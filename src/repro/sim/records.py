"""Per-job log records (the simulator's "Log File" in paper Fig. 14).

:class:`JobRecord` is unchanged — a frozen dataclass, the unit every
analysis helper consumes.  :class:`SimulationLog` however stores the
log **columnar**: one typed buffer per record field (numpy arrays for
the numeric columns, plain lists for strings and allocations) instead
of a list of dataclass instances.  The hot append path
(:meth:`SimulationLog.append_fields`, used by the simulation core)
never builds a :class:`JobRecord` at all; ``records`` / ``__iter__``
materialise them lazily and cache the result, so analysis code sees
the exact objects it always did while replay loops pay only a few
array writes per completion.

Summary accessors are derived from the buffers: ``makespan`` is a
running maximum maintained on append (O(1) — the analysis tables call
it per row), ``throughput`` follows from it, ``execution_times`` and
``to_csv`` are vectorised, and the subset views (``by_workload`` /
``sensitive`` / ``multi_gpu``) filter on the typed columns.
``to_dict`` / ``from_dict`` emit and accept byte-identical payloads to
the historical object implementation — every value crosses back
through native Python types (``ndarray.tolist`` round-trips float64
bit-exactly), so the :class:`~repro.experiments.store.ResultStore` and
the golden harness are untouched.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class JobRecord:
    """Everything the simulator logged about one completed job."""

    job_id: int
    workload: str
    num_gpus: int
    pattern: str
    bandwidth_sensitive: bool
    submit_time: float
    start_time: float
    finish_time: float
    allocation: Tuple[int, ...]
    agg_bw: float
    predicted_effective_bw: float
    measured_effective_bw: float

    @property
    def execution_time(self) -> float:
        """Wall time the job ran (finish − start)."""
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Time spent queued (start − submit)."""
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        """Submit-to-finish latency."""
        return self.finish_time - self.submit_time


#: Initial capacity of the numeric column buffers.
_MIN_CAPACITY = 64


# ---------------------------------------------------------------------- #
# binary columnar codec (the ``.mlog`` format)
# ---------------------------------------------------------------------- #
#: Magic bytes opening every ``.mlog`` payload.
MLOG_MAGIC = b"MLOG"

#: Payload schema version; bumped on incompatible layout changes, and
#: checked on decode so an old reader fails with a clean error instead
#: of misinterpreting bytes.
MLOG_VERSION = 1

#: Byte alignment of the column blobs inside an ``.mlog`` payload, so
#: zero-copy ``frombuffer`` views land on aligned addresses.
_MLOG_ALIGN = 64

#: The fixed column manifest: ``(name, little-endian dtype)`` in payload
#: order.  ``alloc_values``/``alloc_offsets`` are the ragged allocation
#: column in flattened CSR form (``offsets`` has ``n + 1`` entries).
MLOG_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("job_id", "<i8"),
    ("workload_code", "<i4"),
    ("pattern_code", "<i4"),
    ("num_gpus", "<i8"),
    ("bandwidth_sensitive", "|b1"),
    ("submit_time", "<f8"),
    ("start_time", "<f8"),
    ("finish_time", "<f8"),
    ("agg_bw", "<f8"),
    ("predicted_effective_bw", "<f8"),
    ("measured_effective_bw", "<f8"),
    ("alloc_values", "<i8"),
    ("alloc_offsets", "<i8"),
)

_MLOG_DTYPES = dict(MLOG_COLUMNS)


class MlogError(ValueError):
    """Base class of every ``.mlog`` codec failure."""


class MlogFormatError(MlogError):
    """A payload that cannot be decoded: wrong magic, unknown version,
    truncated or bit-flipped bytes, CRC mismatch.  Decoding never
    returns partial data — any inconsistency raises this."""


class MlogEncodeError(MlogError):
    """A log the binary codec cannot represent losslessly (e.g.
    non-integer job ids); callers fall back to the JSON reference
    encoder."""


def _require_int(value: Any, what: str) -> int:
    """``value`` as a plain int, or :class:`MlogEncodeError`."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise MlogEncodeError(f"{what} {value!r} is not an integer")
    return int(value)


def _dictionary_encode(
    names: Sequence[str],
) -> Tuple[np.ndarray, Tuple[str, ...]]:
    """``names`` as int32 codes into a first-seen-order name table."""
    codes = np.empty(len(names), dtype=np.int32)
    table: Dict[str, int] = {}
    for i, name in enumerate(names):
        code = table.get(name)
        if code is None:
            if not isinstance(name, str):
                raise MlogEncodeError(f"column value {name!r} is not a string")
            code = table[name] = len(table)
        codes[i] = code
    return codes, tuple(table)


@dataclass(frozen=True)
class LogColumns:
    """A :class:`SimulationLog` snapshotted as contiguous typed arrays.

    The numeric fields are copies of the log's column buffers (trimmed
    to length); the string columns are dictionary-encoded as int32
    codes into the ``workload_names`` / ``pattern_names`` tables
    (first-seen order, so encoding is deterministic); allocations are
    flattened CSR-style into ``alloc_values`` + ``alloc_offsets``.
    ``arrays`` holds exactly the columns of :data:`MLOG_COLUMNS`.
    """

    policy: str
    topology: str
    num_records: int
    workload_names: Tuple[str, ...]
    pattern_names: Tuple[str, ...]
    arrays: Dict[str, np.ndarray]

    def nbytes(self) -> int:
        """Total payload bytes across all column arrays."""
        return sum(int(a.nbytes) for a in self.arrays.values())


class SimulationLog:
    """Ordered, columnar collection of job records plus summary accessors.

    ``cache_stats`` is an optional run-diagnostics payload (scan-cache
    lookup/hit/miss/eviction counters plus the measured-bandwidth memo
    counters) the simulation core attaches after a run.  It is
    deliberately **excluded** from :meth:`to_dict`: cache counters are
    performance telemetry, not simulation output, and keeping them out
    preserves byte-identity between cached and uncached replays of the
    same trace (the property every golden table and the sweep result
    cache rely on).
    """

    def __init__(self, policy_name: str, topology_name: str) -> None:
        self.policy_name = policy_name
        self.topology_name = topology_name
        self.cache_stats: Optional[Dict[str, float]] = None
        self._n = 0
        self._job_id: List[int] = []
        self._workload: List[str] = []
        self._pattern: List[str] = []
        self._allocation: List[Tuple[int, ...]] = []
        self._num_gpus = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._sensitive = np.empty(_MIN_CAPACITY, dtype=np.bool_)
        self._submit = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._start = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._finish = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._agg_bw = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._predicted = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._measured = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._max_finish = 0.0  # running max: O(1) makespan
        self._materialised: Optional[List[JobRecord]] = None
        # Lazy-decode state (set by ``from_columns(..., lazy=True)``):
        # the dictionary-encoded string/allocation columns, thawed into
        # the plain lists above only when something actually needs
        # per-record objects.  ``_buffer_owner`` pins whatever owns the
        # memory the numeric views alias (a shared-memory segment, a
        # bytes payload) for as long as this log lives.
        self._lazy: Optional[Dict[str, Any]] = None
        self._buffer_owner: Any = None

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        """Double the numeric buffers (geometric growth, amortised O(1)).

        Also the copy-on-append path for logs rebuilt zero-copy from a
        decoded payload: their views are exactly-sized (capacity == n)
        and read-only, so the first append lands here and replaces them
        with owned, writable buffers.
        """
        cap = max(2 * self._num_gpus.shape[0], _MIN_CAPACITY)
        for name in (
            "_num_gpus",
            "_sensitive",
            "_submit",
            "_start",
            "_finish",
            "_agg_bw",
            "_predicted",
            "_measured",
        ):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)

    def append_fields(
        self,
        job_id: int,
        workload: str,
        num_gpus: int,
        pattern: str,
        bandwidth_sensitive: bool,
        submit_time: float,
        start_time: float,
        finish_time: float,
        allocation: Tuple[int, ...],
        agg_bw: float,
        predicted_effective_bw: float,
        measured_effective_bw: float,
    ) -> None:
        """Append one completed job straight into the column buffers.

        The simulation core's hot path: no :class:`JobRecord` is built
        (``records`` materialises lazily if anyone asks).
        """
        if self._lazy is not None:
            self._thaw()
        i = self._n
        if i == self._num_gpus.shape[0]:
            self._grow()
        self._n = i + 1
        self._job_id.append(job_id)
        self._workload.append(workload)
        self._pattern.append(pattern)
        self._allocation.append(allocation)
        self._num_gpus[i] = num_gpus
        self._sensitive[i] = bandwidth_sensitive
        self._submit[i] = submit_time
        self._start[i] = start_time
        self._finish[i] = finish_time
        self._agg_bw[i] = agg_bw
        self._predicted[i] = predicted_effective_bw
        self._measured[i] = measured_effective_bw
        if finish_time > self._max_finish:
            self._max_finish = finish_time
        self._materialised = None

    def append(self, record: JobRecord) -> None:
        """Add one completed job (the simulator appends in completion order)."""
        self.append_fields(
            record.job_id,
            record.workload,
            record.num_gpus,
            record.pattern,
            record.bandwidth_sensitive,
            record.submit_time,
            record.start_time,
            record.finish_time,
            record.allocation,
            record.agg_bw,
            record.predicted_effective_bw,
            record.measured_effective_bw,
        )

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def _thaw(self) -> None:
        """Decode the dictionary-encoded string/allocation columns.

        Logs rebuilt with ``from_columns(..., lazy=True)`` defer this
        until something needs per-record objects (``records``,
        ``to_dict``, ``to_csv``, ``by_workload``, an append); the
        columnar summary accessors never trigger it, which is what lets
        sweep aggregation skip per-job rehydration entirely.
        """
        lazy = self._lazy
        if lazy is None:
            return
        self._lazy = None
        n = self._n
        self._job_id = lazy["job_id"].tolist()
        workload_names = lazy["workload_names"]
        self._workload = [
            workload_names[c] for c in lazy["workload_code"].tolist()
        ]
        pattern_names = lazy["pattern_names"]
        self._pattern = [
            pattern_names[c] for c in lazy["pattern_code"].tolist()
        ]
        offsets = lazy["alloc_offsets"].tolist()
        values = lazy["alloc_values"].tolist()
        self._allocation = [
            tuple(values[offsets[i] : offsets[i + 1]]) for i in range(n)
        ]

    def _record_at(self, i: int) -> JobRecord:
        """Materialise record ``i`` from the column buffers."""
        self._thaw()
        return JobRecord(
            job_id=self._job_id[i],
            workload=self._workload[i],
            num_gpus=int(self._num_gpus[i]),
            pattern=self._pattern[i],
            bandwidth_sensitive=bool(self._sensitive[i]),
            submit_time=float(self._submit[i]),
            start_time=float(self._start[i]),
            finish_time=float(self._finish[i]),
            allocation=self._allocation[i],
            agg_bw=float(self._agg_bw[i]),
            predicted_effective_bw=float(self._predicted[i]),
            measured_effective_bw=float(self._measured[i]),
        )

    @property
    def records(self) -> List[JobRecord]:
        """The log as :class:`JobRecord` objects, in completion order.

        Materialised lazily from the column buffers and cached until
        the next append, so analysis code iterating repeatedly pays the
        object construction once.
        """
        if self._materialised is None:
            self._thaw()
            n = self._n
            gpus = self._num_gpus[:n].tolist()
            sens = self._sensitive[:n].tolist()
            submit = self._submit[:n].tolist()
            start = self._start[:n].tolist()
            finish = self._finish[:n].tolist()
            agg = self._agg_bw[:n].tolist()
            pred = self._predicted[:n].tolist()
            meas = self._measured[:n].tolist()
            self._materialised = [
                JobRecord(*row)
                for row in zip(
                    self._job_id,
                    self._workload,
                    gpus,
                    self._pattern,
                    sens,
                    submit,
                    start,
                    finish,
                    self._allocation,
                    agg,
                    pred,
                    meas,
                )
            ]
        return self._materialised

    def __len__(self) -> int:
        """Number of completed jobs logged."""
        return self._n

    def __iter__(self):
        """Iterate over records in completion order."""
        return iter(self.records)

    # ------------------------------------------------------------------ #
    def by_workload(self, workload: str) -> List[JobRecord]:
        """Records of one workload (e.g. ``"vgg16"``)."""
        records = self.records  # thaws the string columns if needed
        return [
            records[i]
            for i, name in enumerate(self._workload)
            if name == workload
        ]

    def sensitive(self) -> List[JobRecord]:
        """Records of bandwidth-sensitive jobs."""
        records = self.records
        return [records[i] for i in np.flatnonzero(self._sensitive[: self._n])]

    def insensitive(self) -> List[JobRecord]:
        """Records of bandwidth-insensitive jobs."""
        records = self.records
        return [
            records[i] for i in np.flatnonzero(~self._sensitive[: self._n])
        ]

    def multi_gpu(self) -> List[JobRecord]:
        """Records of jobs that used more than one GPU."""
        records = self.records
        return [
            records[i] for i in np.flatnonzero(self._num_gpus[: self._n] > 1)
        ]

    @property
    def makespan(self) -> float:
        """Completion time of the whole trace (O(1): a running max)."""
        return self._max_finish

    @property
    def throughput(self) -> float:
        """Jobs per second over the trace."""
        span = self._max_finish
        return self._n / span if span > 0 else 0.0

    def execution_times(
        self, records: Optional[Sequence[JobRecord]] = None
    ) -> List[float]:
        """Execution times of ``records`` (default: the whole log)."""
        if records is None:
            n = self._n
            return (self._finish[:n] - self._start[:n]).tolist()
        return [r.execution_time for r in records]

    # ------------------------------------------------------------------ #
    # column-level readers (no JobRecord materialisation, no thaw)
    # ------------------------------------------------------------------ #
    def numeric_columns(self) -> Dict[str, np.ndarray]:
        """Read-only views of the numeric columns, trimmed to length.

        Zero-copy — the arrays alias the log's buffers (or, for a log
        decoded lazily from an ``.mlog`` payload, the payload itself) —
        so summary aggregation over a cached sweep never rehydrates
        per-job records.  Keys match :class:`JobRecord` field names.
        """
        n = self._n
        out = {
            "num_gpus": self._num_gpus[:n],
            "bandwidth_sensitive": self._sensitive[:n],
            "submit_time": self._submit[:n],
            "start_time": self._start[:n],
            "finish_time": self._finish[:n],
            "agg_bw": self._agg_bw[:n],
            "predicted_effective_bw": self._predicted[:n],
            "measured_effective_bw": self._measured[:n],
        }
        for arr in out.values():
            arr.flags.writeable = False
        return out

    def wait_times(self) -> np.ndarray:
        """Per-job queueing delay (start − submit), vectorised."""
        n = self._n
        return self._start[:n] - self._submit[:n]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of the whole log.

        Floats survive a JSON round-trip bit-exactly, so a log restored
        with :meth:`from_dict` (e.g. from the sweep result cache)
        reproduces every derived table byte-identically.  Values are
        emitted as native Python types (``tolist`` round-trips the
        buffers bit-exactly) in :class:`JobRecord` field order, so the
        payload is byte-identical to one built from dataclass
        instances.
        """
        self._thaw()
        n = self._n
        return {
            "policy": self.policy_name,
            "topology": self.topology_name,
            "records": [
                {
                    "job_id": jid,
                    "workload": wl,
                    "num_gpus": gpus,
                    "pattern": pat,
                    "bandwidth_sensitive": sens,
                    "submit_time": submit,
                    "start_time": start,
                    "finish_time": finish,
                    "allocation": alloc,
                    "agg_bw": agg,
                    "predicted_effective_bw": pred,
                    "measured_effective_bw": meas,
                }
                for jid, wl, gpus, pat, sens, submit, start, finish, alloc, agg, pred, meas in zip(
                    self._job_id,
                    self._workload,
                    self._num_gpus[:n].tolist(),
                    self._pattern,
                    self._sensitive[:n].tolist(),
                    self._submit[:n].tolist(),
                    self._start[:n].tolist(),
                    self._finish[:n].tolist(),
                    self._allocation,
                    self._agg_bw[:n].tolist(),
                    self._predicted[:n].tolist(),
                    self._measured[:n].tolist(),
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationLog":
        """Rebuild a log produced by :meth:`to_dict`."""
        log = cls(payload["policy"], payload["topology"])
        for raw in payload["records"]:
            log.append_fields(
                raw["job_id"],
                raw["workload"],
                raw["num_gpus"],
                raw["pattern"],
                raw["bandwidth_sensitive"],
                raw["submit_time"],
                raw["start_time"],
                raw["finish_time"],
                tuple(raw["allocation"]),
                raw["agg_bw"],
                raw["predicted_effective_bw"],
                raw["measured_effective_bw"],
            )
        return log

    # ------------------------------------------------------------------ #
    # binary columnar codec
    # ------------------------------------------------------------------ #
    def to_columns(self) -> LogColumns:
        """Snapshot the log as contiguous typed arrays (see :class:`LogColumns`).

        The numeric buffers are copied (trimmed to length), the string
        columns dictionary-encoded in first-seen order, allocations
        flattened CSR-style — everything :meth:`from_columns` needs to
        rebuild a log whose :meth:`to_dict` payload is byte-identical.
        Raises :class:`MlogEncodeError` for content the binary layout
        cannot hold losslessly (non-integer job ids or GPU indices).
        """
        n = self._n
        arrays: Dict[str, np.ndarray] = {
            "num_gpus": np.array(self._num_gpus[:n], dtype=np.int64),
            "bandwidth_sensitive": np.array(self._sensitive[:n], dtype=np.bool_),
            "submit_time": np.array(self._submit[:n], dtype=np.float64),
            "start_time": np.array(self._start[:n], dtype=np.float64),
            "finish_time": np.array(self._finish[:n], dtype=np.float64),
            "agg_bw": np.array(self._agg_bw[:n], dtype=np.float64),
            "predicted_effective_bw": np.array(self._predicted[:n], dtype=np.float64),
            "measured_effective_bw": np.array(self._measured[:n], dtype=np.float64),
        }
        if self._lazy is not None:
            # Still in coded form — re-snapshot the coded columns
            # directly, no thaw (re-encoding a lazily decoded log is
            # exactly the store's migration/save path).
            lz = self._lazy
            workload_names = tuple(lz["workload_names"])
            pattern_names = tuple(lz["pattern_names"])
            arrays["job_id"] = np.array(lz["job_id"], dtype=np.int64)
            arrays["workload_code"] = np.array(lz["workload_code"], dtype=np.int32)
            arrays["pattern_code"] = np.array(lz["pattern_code"], dtype=np.int32)
            arrays["alloc_values"] = np.array(lz["alloc_values"], dtype=np.int64)
            arrays["alloc_offsets"] = np.array(lz["alloc_offsets"], dtype=np.int64)
        else:
            job_id = np.empty(n, dtype=np.int64)
            try:
                for i, jid in enumerate(self._job_id):
                    job_id[i] = _require_int(jid, "job_id")
            except OverflowError:
                raise MlogEncodeError("job_id does not fit int64") from None
            arrays["job_id"] = job_id
            arrays["workload_code"], workload_names = _dictionary_encode(
                self._workload
            )
            arrays["pattern_code"], pattern_names = _dictionary_encode(
                self._pattern
            )
            offsets = np.empty(n + 1, dtype=np.int64)
            offsets[0] = 0
            values = np.empty(
                sum(len(a) for a in self._allocation), dtype=np.int64
            )
            pos = 0
            try:
                for i, alloc in enumerate(self._allocation):
                    for gpu in alloc:
                        values[pos] = _require_int(gpu, "allocation gpu")
                        pos += 1
                    offsets[i + 1] = pos
            except OverflowError:
                raise MlogEncodeError("allocation gpu does not fit int64") from None
            arrays["alloc_values"] = values
            arrays["alloc_offsets"] = offsets
        return LogColumns(
            policy=self.policy_name,
            topology=self.topology_name,
            num_records=n,
            workload_names=workload_names,
            pattern_names=pattern_names,
            arrays=arrays,
        )

    @classmethod
    def from_columns(
        cls,
        columns: LogColumns,
        lazy: bool = False,
        owner: Any = None,
    ) -> "SimulationLog":
        """Rebuild a log from a :meth:`to_columns` snapshot.

        The numeric buffers alias ``columns``' arrays directly (no
        copy — the arrays may be read-only views into a shared-memory
        segment or a decoded payload; the first append copies them out
        via the growth path).  ``lazy=True`` defers decoding the
        string/allocation columns until per-record objects are actually
        requested; the columnar summary accessors never trigger it.
        ``owner`` is pinned on the log to keep whatever backs the
        arrays (a shared-memory handle, a payload buffer) alive.
        """
        try:
            arrays = {
                name: np.asarray(columns.arrays[name], dtype=np.dtype(dt))
                for name, dt in MLOG_COLUMNS
            }
        except (KeyError, TypeError, ValueError):
            raise MlogFormatError(
                "column set does not match the .mlog manifest"
            ) from None
        n = columns.num_records
        offsets = arrays["alloc_offsets"]
        values = arrays["alloc_values"]
        if n < 0 or len(offsets) != n + 1:
            raise MlogFormatError("allocation offsets length mismatch")
        if n:
            diffs = np.diff(offsets)
            if offsets[0] != 0 or diffs.min() < 0 or offsets[-1] != len(values):
                raise MlogFormatError("allocation offsets are inconsistent")
        elif len(values):
            raise MlogFormatError("allocation values without records")
        for name, codes, table in (
            ("workload", arrays["workload_code"], columns.workload_names),
            ("pattern", arrays["pattern_code"], columns.pattern_names),
        ):
            if len(codes) != n:
                raise MlogFormatError(f"{name} column length mismatch")
            if n and (codes.min() < 0 or codes.max() >= len(table)):
                raise MlogFormatError(f"{name} code outside the name table")
        log = cls(columns.policy, columns.topology)
        log._n = n
        log._buffer_owner = owner if owner is not None else arrays
        if n:
            for attr, col in (
                ("_num_gpus", "num_gpus"),
                ("_sensitive", "bandwidth_sensitive"),
                ("_submit", "submit_time"),
                ("_start", "start_time"),
                ("_finish", "finish_time"),
                ("_agg_bw", "agg_bw"),
                ("_predicted", "predicted_effective_bw"),
                ("_measured", "measured_effective_bw"),
            ):
                arr = arrays[col]
                if len(arr) != n:
                    raise MlogFormatError(f"{col} column length mismatch")
                setattr(log, attr, arr)
            log._max_finish = float(arrays["finish_time"].max())
            if len(arrays["job_id"]) != n:
                raise MlogFormatError("job_id column length mismatch")
            log._lazy = {
                "job_id": arrays["job_id"],
                "workload_code": arrays["workload_code"],
                "workload_names": tuple(columns.workload_names),
                "pattern_code": arrays["pattern_code"],
                "pattern_names": tuple(columns.pattern_names),
                "alloc_values": values,
                "alloc_offsets": offsets,
            }
            if not lazy:
                log._thaw()
        return log

    # ------------------------------------------------------------------ #
    def to_csv(self) -> str:
        """The log as CSV, one row per record (tuples space-joined)."""
        self._thaw()
        cols = [f.name for f in fields(JobRecord)]
        n = self._n
        buf = io.StringIO()
        buf.write(",".join(cols) + "\n")
        for jid, wl, gpus, pat, sens, submit, start, finish, alloc, agg, pred, meas in zip(
            self._job_id,
            self._workload,
            self._num_gpus[:n].tolist(),
            self._pattern,
            self._sensitive[:n].tolist(),
            self._submit[:n].tolist(),
            self._start[:n].tolist(),
            self._finish[:n].tolist(),
            self._allocation,
            self._agg_bw[:n].tolist(),
            self._predicted[:n].tolist(),
            self._measured[:n].tolist(),
        ):
            buf.write(
                f"{jid},{wl},{gpus},{pat},{int(sens)},{submit},{start},"
                f"{finish},{' '.join(str(g) for g in alloc)},{agg},{pred},"
                f"{meas}\n"
            )
        return buf.getvalue()


# ---------------------------------------------------------------------- #
# the ``.mlog`` payload: header + dtype manifest + per-column CRC
# ---------------------------------------------------------------------- #
#: Fixed-size preamble: magic, format version, header length.
_MLOG_PREAMBLE = struct.Struct("<4sIQ")


def _align(offset: int) -> int:
    """``offset`` rounded up to the payload alignment."""
    return (offset + _MLOG_ALIGN - 1) // _MLOG_ALIGN * _MLOG_ALIGN


def encode_mlog(
    log_or_columns: "SimulationLog | LogColumns",
    meta: Optional[Mapping[str, Any]] = None,
) -> bytes:
    """Serialise a log (or a :class:`LogColumns` snapshot) as ``.mlog``.

    Layout: a fixed preamble (magic ``MLOG``, format version, header
    length), a JSON header carrying the log metadata, the string name
    tables and the column manifest — each column's dtype, byte offset
    (relative to the aligned data section), byte length and CRC-32 —
    then the aligned raw column bytes.  ``meta`` is an optional
    JSON-ready mapping stored verbatim in the header (the result store
    puts the cell's ``config_hash``/``label`` there).

    Raises :class:`MlogEncodeError` when the log's content cannot be
    represented losslessly; callers then fall back to the JSON path.
    """
    if isinstance(log_or_columns, SimulationLog):
        columns = log_or_columns.to_columns()
    else:
        columns = log_or_columns
    manifest = []
    offset = 0
    blobs = []
    for name, dtype in MLOG_COLUMNS:
        arr = np.ascontiguousarray(columns.arrays[name], dtype=np.dtype(dtype))
        blob = arr.tobytes()
        offset = _align(offset)
        manifest.append(
            {
                "name": name,
                "dtype": dtype,
                "offset": offset,
                "nbytes": len(blob),
                "crc32": zlib.crc32(blob) & 0xFFFFFFFF,
            }
        )
        blobs.append((offset, blob))
        offset += len(blob)
    header = {
        "format": "mapa-mlog",
        "version": MLOG_VERSION,
        "policy": columns.policy,
        "topology": columns.topology,
        "n": columns.num_records,
        "workloads": list(columns.workload_names),
        "patterns": list(columns.pattern_names),
        "meta": dict(meta) if meta else {},
        "columns": manifest,
    }
    header_blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align(_MLOG_PREAMBLE.size + len(header_blob))
    out = bytearray(data_start + offset)
    _MLOG_PREAMBLE.pack_into(
        out, 0, MLOG_MAGIC, MLOG_VERSION, len(header_blob)
    )
    out[_MLOG_PREAMBLE.size : _MLOG_PREAMBLE.size + len(header_blob)] = (
        header_blob
    )
    for blob_offset, blob in blobs:
        start = data_start + blob_offset
        out[start : start + len(blob)] = blob
    return bytes(out)


def _header_error(why: str) -> MlogFormatError:
    return MlogFormatError(f"invalid .mlog payload: {why}")


def decode_mlog(
    payload: "bytes | bytearray | memoryview",
    lazy: bool = False,
    owner: Any = None,
) -> Tuple[Dict[str, Any], "SimulationLog"]:
    """Decode an ``.mlog`` payload; returns ``(meta, log)``.

    The log's numeric buffers are zero-copy views into ``payload``
    (read-only when the payload is immutable); ``lazy=True`` defers
    string/allocation decoding exactly as
    :meth:`SimulationLog.from_columns` does.  ``owner`` (default: the
    payload itself) is pinned on the log so the backing memory outlives
    every view.

    Every validation failure — wrong magic, unknown version, truncated
    or overlapping columns, a CRC mismatch from a bit flip — raises
    :class:`MlogFormatError`; partial data is never returned.
    """
    buf = memoryview(payload)
    if buf.ndim != 1 or buf.itemsize != 1:
        buf = buf.cast("B")
    if len(buf) < _MLOG_PREAMBLE.size:
        raise _header_error("shorter than the preamble")
    magic, version, header_len = _MLOG_PREAMBLE.unpack_from(buf, 0)
    if magic != MLOG_MAGIC:
        raise _header_error("bad magic (not an .mlog payload)")
    if version != MLOG_VERSION:
        raise MlogFormatError(
            f"unsupported .mlog version {version} (expected {MLOG_VERSION})"
        )
    header_end = _MLOG_PREAMBLE.size + header_len
    if header_end > len(buf):
        raise _header_error("truncated header")
    try:
        header = json.loads(bytes(buf[_MLOG_PREAMBLE.size : header_end]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _header_error(f"unparseable header ({exc})") from None
    if not isinstance(header, dict) or header.get("format") != "mapa-mlog":
        raise _header_error("wrong container format")
    if header.get("version") != MLOG_VERSION:
        raise _header_error("header/preamble version mismatch")
    n = header.get("n")
    workloads = header.get("workloads")
    patterns = header.get("patterns")
    manifest = header.get("columns")
    if (
        not isinstance(n, int)
        or n < 0
        or not isinstance(workloads, list)
        or not isinstance(patterns, list)
        or not all(isinstance(w, str) for w in workloads)
        or not all(isinstance(p, str) for p in patterns)
        or not isinstance(manifest, list)
        or not isinstance(header.get("policy"), str)
        or not isinstance(header.get("topology"), str)
    ):
        raise _header_error("malformed header fields")
    if [c.get("name") if isinstance(c, dict) else None for c in manifest] != [
        name for name, _ in MLOG_COLUMNS
    ]:
        raise _header_error("column manifest does not match this version")
    data_start = _align(header_end)
    arrays: Dict[str, np.ndarray] = {}
    for spec, (name, dtype) in zip(manifest, MLOG_COLUMNS):
        if spec.get("dtype") != dtype:
            raise _header_error(f"column {name}: unexpected dtype")
        offset, nbytes, crc = (
            spec.get("offset"), spec.get("nbytes"), spec.get("crc32")
        )
        if (
            not isinstance(offset, int)
            or not isinstance(nbytes, int)
            or not isinstance(crc, int)
            or offset < 0
            or nbytes < 0
        ):
            raise _header_error(f"column {name}: malformed manifest entry")
        start = data_start + offset
        stop = start + nbytes
        if stop > len(buf):
            raise _header_error(f"column {name}: truncated payload")
        blob = buf[start:stop]
        if (zlib.crc32(blob) & 0xFFFFFFFF) != crc:
            raise _header_error(f"column {name}: CRC mismatch")
        dt = np.dtype(dtype)
        if nbytes % dt.itemsize:
            raise _header_error(f"column {name}: ragged byte length")
        arr = np.frombuffer(buf, dtype=dt, count=nbytes // dt.itemsize,
                            offset=start)
        arr.flags.writeable = False
        arrays[name] = arr
    columns = LogColumns(
        policy=header["policy"],
        topology=header["topology"],
        num_records=n,
        workload_names=tuple(workloads),
        pattern_names=tuple(patterns),
        arrays=arrays,
    )
    meta = header.get("meta")
    log = SimulationLog.from_columns(
        columns, lazy=lazy, owner=owner if owner is not None else buf
    )
    return (dict(meta) if isinstance(meta, dict) else {}), log
