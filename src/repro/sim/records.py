"""Per-job log records (the simulator's "Log File" in paper Fig. 14).

:class:`JobRecord` is unchanged — a frozen dataclass, the unit every
analysis helper consumes.  :class:`SimulationLog` however stores the
log **columnar**: one typed buffer per record field (numpy arrays for
the numeric columns, plain lists for strings and allocations) instead
of a list of dataclass instances.  The hot append path
(:meth:`SimulationLog.append_fields`, used by the simulation core)
never builds a :class:`JobRecord` at all; ``records`` / ``__iter__``
materialise them lazily and cache the result, so analysis code sees
the exact objects it always did while replay loops pay only a few
array writes per completion.

Summary accessors are derived from the buffers: ``makespan`` is a
running maximum maintained on append (O(1) — the analysis tables call
it per row), ``throughput`` follows from it, ``execution_times`` and
``to_csv`` are vectorised, and the subset views (``by_workload`` /
``sensitive`` / ``multi_gpu``) filter on the typed columns.
``to_dict`` / ``from_dict`` emit and accept byte-identical payloads to
the historical object implementation — every value crosses back
through native Python types (``ndarray.tolist`` round-trips float64
bit-exactly), so the :class:`~repro.experiments.store.ResultStore` and
the golden harness are untouched.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class JobRecord:
    """Everything the simulator logged about one completed job."""

    job_id: int
    workload: str
    num_gpus: int
    pattern: str
    bandwidth_sensitive: bool
    submit_time: float
    start_time: float
    finish_time: float
    allocation: Tuple[int, ...]
    agg_bw: float
    predicted_effective_bw: float
    measured_effective_bw: float

    @property
    def execution_time(self) -> float:
        """Wall time the job ran (finish − start)."""
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Time spent queued (start − submit)."""
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        """Submit-to-finish latency."""
        return self.finish_time - self.submit_time


#: Initial capacity of the numeric column buffers.
_MIN_CAPACITY = 64


class SimulationLog:
    """Ordered, columnar collection of job records plus summary accessors.

    ``cache_stats`` is an optional run-diagnostics payload (scan-cache
    lookup/hit/miss/eviction counters plus the measured-bandwidth memo
    counters) the simulation core attaches after a run.  It is
    deliberately **excluded** from :meth:`to_dict`: cache counters are
    performance telemetry, not simulation output, and keeping them out
    preserves byte-identity between cached and uncached replays of the
    same trace (the property every golden table and the sweep result
    cache rely on).
    """

    def __init__(self, policy_name: str, topology_name: str) -> None:
        self.policy_name = policy_name
        self.topology_name = topology_name
        self.cache_stats: Optional[Dict[str, float]] = None
        self._n = 0
        self._job_id: List[int] = []
        self._workload: List[str] = []
        self._pattern: List[str] = []
        self._allocation: List[Tuple[int, ...]] = []
        self._num_gpus = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._sensitive = np.empty(_MIN_CAPACITY, dtype=np.bool_)
        self._submit = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._start = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._finish = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._agg_bw = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._predicted = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._measured = np.empty(_MIN_CAPACITY, dtype=np.float64)
        self._max_finish = 0.0  # running max: O(1) makespan
        self._materialised: Optional[List[JobRecord]] = None

    # ------------------------------------------------------------------ #
    # appends
    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        """Double the numeric buffers (geometric growth, amortised O(1))."""
        cap = 2 * self._num_gpus.shape[0]
        for name in (
            "_num_gpus",
            "_sensitive",
            "_submit",
            "_start",
            "_finish",
            "_agg_bw",
            "_predicted",
            "_measured",
        ):
            old = getattr(self, name)
            grown = np.empty(cap, dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)

    def append_fields(
        self,
        job_id: int,
        workload: str,
        num_gpus: int,
        pattern: str,
        bandwidth_sensitive: bool,
        submit_time: float,
        start_time: float,
        finish_time: float,
        allocation: Tuple[int, ...],
        agg_bw: float,
        predicted_effective_bw: float,
        measured_effective_bw: float,
    ) -> None:
        """Append one completed job straight into the column buffers.

        The simulation core's hot path: no :class:`JobRecord` is built
        (``records`` materialises lazily if anyone asks).
        """
        i = self._n
        if i == self._num_gpus.shape[0]:
            self._grow()
        self._n = i + 1
        self._job_id.append(job_id)
        self._workload.append(workload)
        self._pattern.append(pattern)
        self._allocation.append(allocation)
        self._num_gpus[i] = num_gpus
        self._sensitive[i] = bandwidth_sensitive
        self._submit[i] = submit_time
        self._start[i] = start_time
        self._finish[i] = finish_time
        self._agg_bw[i] = agg_bw
        self._predicted[i] = predicted_effective_bw
        self._measured[i] = measured_effective_bw
        if finish_time > self._max_finish:
            self._max_finish = finish_time
        self._materialised = None

    def append(self, record: JobRecord) -> None:
        """Add one completed job (the simulator appends in completion order)."""
        self.append_fields(
            record.job_id,
            record.workload,
            record.num_gpus,
            record.pattern,
            record.bandwidth_sensitive,
            record.submit_time,
            record.start_time,
            record.finish_time,
            record.allocation,
            record.agg_bw,
            record.predicted_effective_bw,
            record.measured_effective_bw,
        )

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def _record_at(self, i: int) -> JobRecord:
        """Materialise record ``i`` from the column buffers."""
        return JobRecord(
            job_id=self._job_id[i],
            workload=self._workload[i],
            num_gpus=int(self._num_gpus[i]),
            pattern=self._pattern[i],
            bandwidth_sensitive=bool(self._sensitive[i]),
            submit_time=float(self._submit[i]),
            start_time=float(self._start[i]),
            finish_time=float(self._finish[i]),
            allocation=self._allocation[i],
            agg_bw=float(self._agg_bw[i]),
            predicted_effective_bw=float(self._predicted[i]),
            measured_effective_bw=float(self._measured[i]),
        )

    @property
    def records(self) -> List[JobRecord]:
        """The log as :class:`JobRecord` objects, in completion order.

        Materialised lazily from the column buffers and cached until
        the next append, so analysis code iterating repeatedly pays the
        object construction once.
        """
        if self._materialised is None:
            n = self._n
            gpus = self._num_gpus[:n].tolist()
            sens = self._sensitive[:n].tolist()
            submit = self._submit[:n].tolist()
            start = self._start[:n].tolist()
            finish = self._finish[:n].tolist()
            agg = self._agg_bw[:n].tolist()
            pred = self._predicted[:n].tolist()
            meas = self._measured[:n].tolist()
            self._materialised = [
                JobRecord(*row)
                for row in zip(
                    self._job_id,
                    self._workload,
                    gpus,
                    self._pattern,
                    sens,
                    submit,
                    start,
                    finish,
                    self._allocation,
                    agg,
                    pred,
                    meas,
                )
            ]
        return self._materialised

    def __len__(self) -> int:
        """Number of completed jobs logged."""
        return self._n

    def __iter__(self):
        """Iterate over records in completion order."""
        return iter(self.records)

    # ------------------------------------------------------------------ #
    def by_workload(self, workload: str) -> List[JobRecord]:
        """Records of one workload (e.g. ``"vgg16"``)."""
        records = self.records
        return [
            records[i]
            for i, name in enumerate(self._workload)
            if name == workload
        ]

    def sensitive(self) -> List[JobRecord]:
        """Records of bandwidth-sensitive jobs."""
        records = self.records
        return [records[i] for i in np.flatnonzero(self._sensitive[: self._n])]

    def insensitive(self) -> List[JobRecord]:
        """Records of bandwidth-insensitive jobs."""
        records = self.records
        return [
            records[i] for i in np.flatnonzero(~self._sensitive[: self._n])
        ]

    def multi_gpu(self) -> List[JobRecord]:
        """Records of jobs that used more than one GPU."""
        records = self.records
        return [
            records[i] for i in np.flatnonzero(self._num_gpus[: self._n] > 1)
        ]

    @property
    def makespan(self) -> float:
        """Completion time of the whole trace (O(1): a running max)."""
        return self._max_finish

    @property
    def throughput(self) -> float:
        """Jobs per second over the trace."""
        span = self._max_finish
        return self._n / span if span > 0 else 0.0

    def execution_times(
        self, records: Optional[Sequence[JobRecord]] = None
    ) -> List[float]:
        """Execution times of ``records`` (default: the whole log)."""
        if records is None:
            n = self._n
            return (self._finish[:n] - self._start[:n]).tolist()
        return [r.execution_time for r in records]

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of the whole log.

        Floats survive a JSON round-trip bit-exactly, so a log restored
        with :meth:`from_dict` (e.g. from the sweep result cache)
        reproduces every derived table byte-identically.  Values are
        emitted as native Python types (``tolist`` round-trips the
        buffers bit-exactly) in :class:`JobRecord` field order, so the
        payload is byte-identical to one built from dataclass
        instances.
        """
        n = self._n
        return {
            "policy": self.policy_name,
            "topology": self.topology_name,
            "records": [
                {
                    "job_id": jid,
                    "workload": wl,
                    "num_gpus": gpus,
                    "pattern": pat,
                    "bandwidth_sensitive": sens,
                    "submit_time": submit,
                    "start_time": start,
                    "finish_time": finish,
                    "allocation": alloc,
                    "agg_bw": agg,
                    "predicted_effective_bw": pred,
                    "measured_effective_bw": meas,
                }
                for jid, wl, gpus, pat, sens, submit, start, finish, alloc, agg, pred, meas in zip(
                    self._job_id,
                    self._workload,
                    self._num_gpus[:n].tolist(),
                    self._pattern,
                    self._sensitive[:n].tolist(),
                    self._submit[:n].tolist(),
                    self._start[:n].tolist(),
                    self._finish[:n].tolist(),
                    self._allocation,
                    self._agg_bw[:n].tolist(),
                    self._predicted[:n].tolist(),
                    self._measured[:n].tolist(),
                )
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationLog":
        """Rebuild a log produced by :meth:`to_dict`."""
        log = cls(payload["policy"], payload["topology"])
        for raw in payload["records"]:
            log.append_fields(
                raw["job_id"],
                raw["workload"],
                raw["num_gpus"],
                raw["pattern"],
                raw["bandwidth_sensitive"],
                raw["submit_time"],
                raw["start_time"],
                raw["finish_time"],
                tuple(raw["allocation"]),
                raw["agg_bw"],
                raw["predicted_effective_bw"],
                raw["measured_effective_bw"],
            )
        return log

    # ------------------------------------------------------------------ #
    def to_csv(self) -> str:
        """The log as CSV, one row per record (tuples space-joined)."""
        cols = [f.name for f in fields(JobRecord)]
        n = self._n
        buf = io.StringIO()
        buf.write(",".join(cols) + "\n")
        for jid, wl, gpus, pat, sens, submit, start, finish, alloc, agg, pred, meas in zip(
            self._job_id,
            self._workload,
            self._num_gpus[:n].tolist(),
            self._pattern,
            self._sensitive[:n].tolist(),
            self._submit[:n].tolist(),
            self._start[:n].tolist(),
            self._finish[:n].tolist(),
            self._allocation,
            self._agg_bw[:n].tolist(),
            self._predicted[:n].tolist(),
            self._measured[:n].tolist(),
        ):
            buf.write(
                f"{jid},{wl},{gpus},{pat},{int(sens)},{submit},{start},"
                f"{finish},{' '.join(str(g) for g in alloc)},{agg},{pred},"
                f"{meas}\n"
            )
        return buf.getvalue()
