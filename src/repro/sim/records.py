"""Per-job log records (the simulator's "Log File" in paper Fig. 14)."""

from __future__ import annotations

import io
from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class JobRecord:
    """Everything the simulator logged about one completed job."""

    job_id: int
    workload: str
    num_gpus: int
    pattern: str
    bandwidth_sensitive: bool
    submit_time: float
    start_time: float
    finish_time: float
    allocation: Tuple[int, ...]
    agg_bw: float
    predicted_effective_bw: float
    measured_effective_bw: float

    @property
    def execution_time(self) -> float:
        """Wall time the job ran (finish − start)."""
        return self.finish_time - self.start_time

    @property
    def wait_time(self) -> float:
        """Time spent queued (start − submit)."""
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        """Submit-to-finish latency."""
        return self.finish_time - self.submit_time


class SimulationLog:
    """Ordered collection of job records plus summary accessors.

    ``cache_stats`` is an optional run-diagnostics payload (scan-cache
    lookup/hit/miss/eviction counters plus the measured-bandwidth memo
    counters) the simulation core attaches after a run.  It is
    deliberately **excluded** from :meth:`to_dict`: cache counters are
    performance telemetry, not simulation output, and keeping them out
    preserves byte-identity between cached and uncached replays of the
    same trace (the property every golden table and the sweep result
    cache rely on).
    """

    def __init__(self, policy_name: str, topology_name: str) -> None:
        self.policy_name = policy_name
        self.topology_name = topology_name
        self.records: List[JobRecord] = []
        self.cache_stats: Optional[Dict[str, float]] = None

    def append(self, record: JobRecord) -> None:
        """Add one completed job (the simulator appends in completion order)."""
        self.records.append(record)

    def __len__(self) -> int:
        """Number of completed jobs logged."""
        return len(self.records)

    def __iter__(self):
        """Iterate over records in completion order."""
        return iter(self.records)

    # ------------------------------------------------------------------ #
    def by_workload(self, workload: str) -> List[JobRecord]:
        """Records of one workload (e.g. ``"vgg16"``)."""
        return [r for r in self.records if r.workload == workload]

    def sensitive(self) -> List[JobRecord]:
        """Records of bandwidth-sensitive jobs."""
        return [r for r in self.records if r.bandwidth_sensitive]

    def insensitive(self) -> List[JobRecord]:
        """Records of bandwidth-insensitive jobs."""
        return [r for r in self.records if not r.bandwidth_sensitive]

    def multi_gpu(self) -> List[JobRecord]:
        """Records of jobs that used more than one GPU."""
        return [r for r in self.records if r.num_gpus > 1]

    @property
    def makespan(self) -> float:
        """Completion time of the whole trace."""
        return max((r.finish_time for r in self.records), default=0.0)

    @property
    def throughput(self) -> float:
        """Jobs per second over the trace."""
        span = self.makespan
        return len(self.records) / span if span > 0 else 0.0

    def execution_times(self, records: Optional[Sequence[JobRecord]] = None) -> List[float]:
        """Execution times of ``records`` (default: the whole log)."""
        recs = self.records if records is None else records
        return [r.execution_time for r in recs]

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of the whole log.

        Floats survive a JSON round-trip bit-exactly, so a log restored
        with :meth:`from_dict` (e.g. from the sweep result cache)
        reproduces every derived table byte-identically.
        """
        return {
            "policy": self.policy_name,
            "topology": self.topology_name,
            "records": [asdict(r) for r in self.records],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationLog":
        """Rebuild a log produced by :meth:`to_dict`."""
        log = cls(payload["policy"], payload["topology"])
        for raw in payload["records"]:
            data = dict(raw)
            data["allocation"] = tuple(data["allocation"])
            log.append(JobRecord(**data))
        return log

    # ------------------------------------------------------------------ #
    def to_csv(self) -> str:
        """The log as CSV, one row per record (tuples space-joined)."""
        cols = [f.name for f in fields(JobRecord)]
        buf = io.StringIO()
        buf.write(",".join(cols) + "\n")
        for r in self.records:
            row = []
            for c in cols:
                v = getattr(r, c)
                if isinstance(v, tuple):
                    v = " ".join(str(x) for x in v)
                elif isinstance(v, bool):
                    v = int(v)
                row.append(str(v))
            buf.write(",".join(row) + "\n")
        return buf.getvalue()
