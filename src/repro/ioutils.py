"""Small filesystem helpers shared across the package and harnesses."""

from __future__ import annotations

import os
import tempfile


def atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Safe under concurrent writers — parallel sweep workers and
    simultaneous benchmark runs can never leave a half-written file
    behind.  Returns ``path``.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=".tmp-", suffix=os.path.splitext(path)[1], dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path
