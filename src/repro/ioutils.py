"""Small filesystem helpers shared across the package and harnesses."""

from __future__ import annotations

import os
import tempfile


def fsync_dir(directory: str) -> bool:
    """Best-effort fsync of a directory; whether it succeeded.

    After ``os.replace`` the *rename itself* lives in the directory
    inode — a crash before the directory entry reaches disk can forget
    a file whose contents were durably written.  Some filesystems (and
    platforms) refuse ``open``/``fsync`` on directories, so failure is
    reported, never raised.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:
        return False
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, durable: bool = True) -> str:
    """Binary twin of :func:`atomic_write_text`; returns ``path``.

    Same temp-file + ``os.replace`` discipline and the same
    ``durable`` fsync semantics, for payloads that are already bytes
    (the result store's ``.mlog`` tier and shared-memory spill files).
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=".tmp-", suffix=os.path.splitext(path)[1], dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        if durable:
            fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str, text: str, durable: bool = True) -> str:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    Safe under concurrent writers — parallel sweep workers and
    simultaneous benchmark runs can never leave a half-written file
    behind.  Returns ``path``.

    ``durable=True`` (the default) additionally fsyncs the temp file
    *before* the rename, and the containing directory (best-effort)
    after it.  Without the file fsync, ``os.replace`` only guarantees
    atomicity against concurrent *readers*: a power loss or SIGKILL
    after the rename but before the kernel flushed the data pages could
    leave ``path`` pointing at an empty or torn file — exactly the
    "atomically written" cache entry the daemon's warm-restart path
    would then try to load.  Callers writing genuinely disposable
    scratch output may pass ``durable=False`` to skip both syncs.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        prefix=".tmp-", suffix=os.path.splitext(path)[1], dir=directory
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            if durable:
                fh.flush()
                os.fsync(fh.fileno())
        os.replace(tmp_path, path)
        if durable:
            fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path
