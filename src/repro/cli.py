"""Command-line interface: ``mapa`` (or ``python -m repro``).

Subcommands
-----------
``topos``
    List registered server topologies.
``alloc``
    Allocate one pattern on an idle server and print the decision.
``trace``
    Generate (or load) a job trace, simulate all four policies and print
    the Table-3-style summary.
``fit``
    Fit the Eq. 2 effective-bandwidth model for a topology and print the
    coefficients next to the paper's.
``sweep``
    Expand a declarative topology×policy×discipline grid, simulate the
    cells in parallel worker processes with content-hash result caching,
    and print a per-cell summary (table, JSON or CSV).
``scenario``
    Generate a seeded stochastic scenario (Poisson / diurnal / MMPP
    arrivals × a workload/GPU-size mix), then describe it, export it as
    a CSV trace, replay it on a heterogeneous multi-server fleet, or
    sweep it through the cached experiment grid exactly like a paper
    trace.
``cache``
    Inspect or clear the on-disk caches (sweep results and the spilled
    scan-tier partitions: entry counts, bytes, orphaned debris), or
    exercise the persistent scan tier — ``spill`` populates it from a
    cold replay, ``warm`` warm-starts a replay from it and reports the
    first-pass hit rate.  In-memory scan-cache hit/miss statistics are
    embedded directly in the output of the runs that use it (``trace``,
    ``scenario --fleet``).  ``--shards N`` runs the tier replay through
    the sharded scheduler instead, one scan cache per shard.
``fleet``
    Sharded fleet-scale replay: partition a heterogeneous fleet into N
    multi-process scheduler shards sharing one read-only topology
    segment, replay a deterministic scenario, and print throughput, the
    canonical log digest, and aggregate plus per-shard cache counters.
``serve``
    Run the allocation daemon: a MAPA scheduler (single or sharded)
    behind a unix socket or TCP port speaking newline-delimited JSON,
    with admission control, request batching and graceful drain into
    the persistent scan tier.  ``--bench`` self-hosts a daemon and
    reports sustained requests/sec.
``client``
    One request against a running daemon: submit/release/query a job,
    fetch the live metrics snapshot, or drain the daemon.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.tables import format_table
from .appgraph import patterns
from .allocator.mapa import Mapa
from .policies.base import AllocationRequest
from .policies.registry import POLICY_NAMES, make_policy
from .scoring.effective import FEATURE_NAMES, PAPER_COEFFICIENTS
from .scoring.regression import fit_for_hardware
from .sim.cluster import run_all_policies
from .sim.disciplines import DISCIPLINES
from .sim.metrics import TABLE3_QUANTILES, speedup_summary
from .topology.builders import TOPOLOGY_BUILDERS, by_name
from .workloads.generator import generate_job_file
from .workloads.jobs import JobFile


def _cmd_topos(_: argparse.Namespace) -> int:
    """``mapa topos``: print the registered server topologies."""
    rows = []
    for name in sorted(TOPOLOGY_BUILDERS):
        hw = by_name(name)
        rows.append(
            [
                name,
                hw.num_gpus,
                sum(1 for _ in hw.nvlink_links()),
                f"{hw.aggregate_bandwidth():.0f}",
            ]
        )
    print(
        format_table(
            ["topology", "gpus", "nvlinks", "total BW (GB/s)"], rows,
            title="Registered server topologies",
        )
    )
    return 0


def _cmd_alloc(args: argparse.Namespace) -> int:
    """``mapa alloc``: one allocation on an idle server, scores printed."""
    hw = by_name(args.topology)
    policy = make_policy(args.policy)
    mapa = Mapa(hw, policy)
    pattern = patterns.by_name(args.pattern, args.gpus)
    request = AllocationRequest(
        pattern=pattern, bandwidth_sensitive=not args.insensitive
    )
    allocation = mapa.try_allocate(request)
    if allocation is None:
        print("allocation failed: not enough free GPUs")
        return 1
    print(f"policy     : {policy.name}")
    print(f"topology   : {hw.name}")
    print(f"pattern    : {pattern.name} ({args.gpus} GPUs)")
    print(f"allocation : {allocation.gpus}")
    for key, value in sorted(allocation.scores.items()):
        print(f"  {key:<14}= {value:.3f}")
    return 0


def _scan_cache_line(stats) -> Optional[str]:
    """One-line summary of a run's embedded scan-cache statistics."""
    if not stats or "scan_lookups" not in stats or not stats["scan_lookups"]:
        return None
    return (
        f"{100.0 * stats['scan_hit_rate']:.1f}% hits "
        f"({stats['scan_hits']:.0f}/{stats['scan_lookups']:.0f} lookups, "
        f"{stats['scan_misses']:.0f} misses, "
        f"{stats['scan_evictions']:.0f} evictions)"
    )


def _per_shard_cache_rows(stats) -> List[List[str]]:
    """Per-shard scan-cache rows for a sharded replay's summary table."""
    rows: List[List[str]] = []
    for i, shard in enumerate((stats or {}).get("per_shard", ())):
        line = _scan_cache_line(shard)
        if line is not None:
            rows.append([f"scan cache [shard {i}]", line])
    return rows


def _cmd_trace(args: argparse.Namespace) -> int:
    """``mapa trace``: simulate a trace under all four policies."""
    hw = by_name(args.topology)
    if args.jobfile:
        job_file = JobFile.load(args.jobfile)
    else:
        job_file = generate_job_file(
            num_jobs=args.jobs, seed=args.seed, max_gpus=min(5, hw.num_gpus)
        )
    model, _, _ = fit_for_hardware(hw)
    logs = run_all_policies(hw, job_file, model, scheduling=args.scheduling)
    summaries = speedup_summary(logs)
    headers = ["Policy"] + [name for name, _ in TABLE3_QUANTILES] + ["Tput"]
    rows = [[s.policy] + [f"{v:.3f}" for v in s.row()] for s in summaries]
    print(
        format_table(
            headers,
            rows,
            title=(
                f"Normalized speedup vs baseline — {hw.name}, "
                f"{len(job_file)} jobs ({args.scheduling}, sensitive jobs)"
            ),
        )
    )
    for name, log in logs.items():
        line = _scan_cache_line(log.cache_stats)
        if line is not None:
            print(f"scan cache [{name}]: {line}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """``mapa cluster``: compare node policies on a server fleet."""
    import numpy as np

    from .cluster import NODE_POLICIES, run_cluster

    servers = [by_name(name) for name in args.servers]
    job_file = generate_job_file(
        num_jobs=args.jobs,
        seed=args.seed,
        max_gpus=min(5, min(hw.num_gpus for hw in servers)),
    )
    rows = []
    for node_policy in NODE_POLICIES:
        sim = run_cluster(
            servers,
            job_file,
            gpu_policy=args.policy,
            node_policy=node_policy,
            scheduling=args.scheduling,
        )
        sens = [r for r in sim.log.sensitive() if r.num_gpus > 1]
        mean_bw = float(np.mean([r.measured_effective_bw for r in sens])) if sens else 0.0
        rows.append(
            [
                node_policy,
                f"{sim.log.makespan:.0f}",
                f"{mean_bw:.1f}",
                " ".join(str(v) for v in sim.jobs_per_server().values()),
            ]
        )
    print(
        format_table(
            ["node policy", "makespan (s)", "mean sens. EffBW", "jobs/server"],
            rows,
            title=(
                f"Cluster of {len(servers)} servers "
                f"({', '.join(hw.name for hw in servers)}), "
                f"{len(job_file)} jobs, {args.policy} inside nodes, "
                f"{args.scheduling} queue"
            ),
        )
    )
    return 0


def _run_sweep(args: argparse.Namespace, trace, trace_label: str) -> int:
    """Shared sweep driver: grid × ``trace`` with caching and export.

    Both ``mapa sweep`` (paper-style :class:`TraceSpec`) and
    ``mapa scenario --grid`` (generated :class:`ScenarioSpec`) land
    here — generated scenarios sweep, cache and export through exactly
    the machinery paper traces use.
    """
    import json

    from .analysis.export import sweep_to_csv
    from .experiments import (
        SUMMARY_COLUMNS,
        ResultStore,
        SweepRunner,
        default_cache_dir,
        parse_grid,
    )

    try:
        spec = parse_grid(args.grid, trace=trace, model=args.model)
        runner = SweepRunner(
            store=(
                None
                if args.no_cache
                else ResultStore(args.cache_dir or default_cache_dir())
            ),
            jobs=args.workers,
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    outcome = runner.run(spec)
    rows = outcome.summary_rows()
    if args.format == "json":
        print(
            json.dumps(
                {
                    "cells": [
                        dict(zip(SUMMARY_COLUMNS, row)) for row in rows
                    ],
                    "num_cells": outcome.num_cells,
                    "num_cached": outcome.num_cached,
                    "num_simulated": outcome.num_simulated,
                },
                indent=2,
            )
        )
    elif args.format == "csv":
        print(sweep_to_csv(outcome), end="")
    else:
        from .analysis.tables import format_sweep_summary

        print(
            format_sweep_summary(
                outcome,
                title=(
                    f"Sweep: {len(spec.topologies)} topologies × "
                    f"{len(spec.policies)} policies × "
                    f"{len(spec.disciplines)} disciplines, "
                    f"{trace_label}"
                ),
            )
        )
    print(
        f"sweep: {outcome.num_cells} cells, {outcome.num_cached} cached, "
        f"{outcome.num_simulated} simulated "
        f"({args.workers} worker{'s' if args.workers != 1 else ''}, "
        f"{outcome.elapsed:.1f}s)",
        file=sys.stderr,
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """``mapa sweep``: run a cached, parallel experiment grid."""
    from .experiments import TraceSpec

    args.workers = args.jobs
    try:
        trace = TraceSpec(
            num_jobs=args.trace_jobs, seed=args.seed, max_gpus=args.max_gpus
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    return _run_sweep(
        args, trace, f"{args.trace_jobs}-job trace (seed {args.seed})"
    )


def _build_arrival(args: argparse.Namespace):
    """The arrival process selected by the ``scenario`` flags."""
    from .scenarios import (
        BatchArrivals,
        DiurnalArrivals,
        MMPPArrivals,
        PoissonArrivals,
    )

    if args.arrival == "batch":
        return BatchArrivals()
    if args.arrival == "poisson":
        return PoissonArrivals(rate=args.rate)
    if args.arrival == "diurnal":
        return DiurnalArrivals(
            base_rate=args.rate, peak_rate=args.peak_rate, period=args.period
        )
    return MMPPArrivals(
        quiet_rate=args.quiet_rate,
        burst_rate=args.burst_rate,
        quiet_dwell=args.quiet_dwell,
        burst_dwell=args.burst_dwell,
    )


def _scenario_fleet_replay(args: argparse.Namespace, spec) -> int:
    """Replay a scenario on a heterogeneous fleet; print the summary."""
    import numpy as np

    from .cluster import run_cluster
    from .scenarios import FleetSpec

    fleet = FleetSpec.parse(args.fleet)
    resolved = spec.resolve(fleet.min_gpus_per_server())
    job_file = resolved.build()
    if args.output:
        # Export exactly the (size-resolved) trace the replay consumes.
        job_file.save(args.output)
        print(f"trace written to {args.output}")
    if args.shards:
        from .cluster import (
            SHARDABLE_NODE_POLICIES,
            ShardedFleetScheduler,
            ShardedFleetSimulator,
        )

        if args.scheduling != "fifo":
            raise ValueError(
                "--shards replays dispatch FIFO only; drop --scheduling"
            )
        if args.node_policy not in SHARDABLE_NODE_POLICIES:
            raise ValueError(
                f"node policy {args.node_policy!r} cannot be sharded; "
                f"shardable: {', '.join(SHARDABLE_NODE_POLICIES)}"
            )
        with ShardedFleetScheduler(
            fleet,
            args.shards,
            gpu_policy=args.policy,
            node_policy=args.node_policy,
        ) as scheduler:
            fleet_sim = ShardedFleetSimulator(scheduler)
            log = fleet_sim.run(job_file, dynamics=resolved.dynamics)
            per_server = fleet_sim.jobs_per_server()
    else:
        sim = run_cluster(
            fleet.build(),
            job_file,
            gpu_policy=args.policy,
            node_policy=args.node_policy,
            scheduling=args.scheduling,
            dynamics=resolved.dynamics,
        )
        log = sim.log
        per_server = sim.jobs_per_server()
    waits = [r.wait_time for r in log.records]
    sens = [r.measured_effective_bw for r in log.sensitive() if r.num_gpus > 1]
    rows = [
        ["servers", f"{fleet.num_servers} ({fleet.label()})"],
        ["jobs", str(len(log))],
        ["makespan (s)", f"{log.makespan:.1f}"],
        ["mean wait (s)", f"{float(np.mean(waits)):.1f}" if waits else "0.0"],
        ["jobs/h", f"{3600.0 * log.throughput:.1f}"],
        ["mean sens. EffBW", f"{float(np.mean(sens)):.1f}" if sens else "0.0"],
        ["busiest server", str(max(per_server.values(), default=0))],
        [
            "idlest server",
            str(min(per_server.get(i, 0) for i in range(fleet.num_servers))),
        ],
    ]
    if resolved.dynamics is not None and not resolved.dynamics.is_empty():
        rows.insert(1, ["dynamics", resolved.dynamics.describe()])
    if args.shards:
        rows.insert(1, ["shards", str(args.shards)])
    cache_line = _scan_cache_line(log.cache_stats)
    if cache_line is not None:
        rows.append(["scan cache", cache_line])
    rows.extend(_per_shard_cache_rows(log.cache_stats))
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"Scenario fleet replay — {resolved.describe()}",
        )
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    """``mapa scenario``: generate, export, replay or sweep a scenario."""
    from collections import Counter

    from .scenarios import DynamicsSpec, ScenarioSpec, mix_by_name

    try:
        dynamics = (
            DynamicsSpec.parse(args.dynamics) if args.dynamics else None
        )
        spec = ScenarioSpec(
            num_jobs=args.num_jobs,
            seed=args.seed,
            arrival=_build_arrival(args),
            mix=mix_by_name(args.mix),
            name=f"{args.mix}/{args.arrival}",
            dynamics=dynamics,
        )
    except ValueError as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2
    if args.grid is not None:
        if args.output:
            # The grid resolves the trace per topology, so there is no
            # single trace to export — reject instead of silently
            # ignoring the flag.
            print(
                "scenario: --output cannot be combined with --grid "
                "(each grid topology resolves its own trace; use "
                "--output without --grid to export)",
                file=sys.stderr,
            )
            return 2
        if args.fleet:
            # Sweeps run single-server cells over the grid's topology
            # axis; a fleet replay is a different mode entirely.
            print(
                "scenario: --fleet cannot be combined with --grid "
                "(sweep topologies come from the grid's topology axis; "
                "drop --grid for a fleet replay)",
                file=sys.stderr,
            )
            return 2
        return _run_sweep(
            args,
            spec,
            f"{args.num_jobs}-job {spec.name} scenario (seed {args.seed})",
        )
    if args.shards and not args.fleet:
        print(
            "scenario: --shards requires --fleet (shards partition a "
            "multi-server fleet)",
            file=sys.stderr,
        )
        return 2
    if args.fleet:
        try:
            return _scenario_fleet_replay(args, spec)
        except ValueError as exc:
            print(f"scenario: {exc}", file=sys.stderr)
            return 2
    job_file = spec.build()
    if args.output:
        job_file.save(args.output)
        print(f"trace written to {args.output}")
        return 0
    submits = [j.submit_time for j in job_file]
    span = submits[-1] - submits[0] if len(submits) > 1 else 0.0
    counts = Counter(j.workload for j in job_file)
    sizes = Counter(j.num_gpus for j in job_file)
    rows = [
        ["jobs", str(len(job_file))],
        ["arrival span (s)", f"{span:.1f}"],
        [
            "observed rate (jobs/s)",
            f"{(len(job_file) - 1) / span:.4f}" if span > 0 else "batch",
        ],
        [
            "GPU sizes",
            " ".join(f"{s}:{sizes[s]}" for s in sorted(sizes)),
        ],
        [
            "top workloads",
            " ".join(f"{w}:{c}" for w, c in counts.most_common(4)),
        ],
    ]
    print(
        format_table(
            ["metric", "value"], rows, title=f"Scenario — {spec.describe()}"
        )
    )
    return 0


def _cache_tier_replay(args: argparse.Namespace, store) -> int:
    """``mapa cache warm|spill``: exercise the persistent scan tier.

    ``spill`` replays a scenario cold and writes the resulting scan
    winners to the tier (populating it); ``warm`` warm-starts a fresh
    cache from the tier before replaying and reports the first-pass hit
    rate (validating it).  Both replay the same deterministic scenario
    for a given (fleet, jobs, seed), so a ``spill`` followed by a
    ``warm`` demonstrates the cross-process reuse end to end.

    With ``--shards N`` the replay runs through the sharded scheduler:
    every shard owns a scan cache attached to the same on-disk tier
    (content-addressed keys make concurrent population safe), ``warm``
    warm-starts each shard from it, and ``spill`` writes every shard's
    winners back.
    """
    import time as _time

    from .cluster import run_cluster
    from .experiments.spill import ScanSpillStore
    from .scenarios import FleetSpec, MMPPArrivals, ScenarioSpec
    from .scoring.memo import ScanCache

    try:
        fleet = FleetSpec.parse(args.fleet)
    except ValueError as exc:
        print(f"cache: {exc}", file=sys.stderr)
        return 2
    spec = ScenarioSpec(
        num_jobs=args.jobs,
        seed=args.seed,
        arrival=MMPPArrivals(),
        name="cache-tier",
    ).resolve(fleet.min_gpus_per_server())
    job_file = spec.build()
    spill = ScanSpillStore(store.root)
    written: Optional[int] = None
    started = _time.perf_counter()
    if args.shards:
        from .cluster import ShardedFleetScheduler, ShardedFleetSimulator

        # Sharded tier replay: every shard owns a scan cache keyed by
        # the same content-addressed wiring hashes, so they all load
        # from — and spill into — the one on-disk tier.
        with ShardedFleetScheduler(
            fleet,
            args.shards,
            gpu_policy=args.policy,
            scan_spill_root=store.root,
        ) as scheduler:
            log = ShardedFleetSimulator(scheduler).run(job_file)
            if args.action == "spill":
                written = scheduler.spill_scan_cache()
    else:
        cache = ScanCache()
        sim = run_cluster(
            fleet.build(),
            job_file,
            gpu_policy=args.policy,
            scan_cache=cache,
            scan_spill=spill if args.action == "warm" else None,
        )
        log = sim.log
        if args.action == "spill":
            written = spill.spill(cache)
    wall = _time.perf_counter() - started
    stats = log.cache_stats or {}
    rows = [
        ["tier dir", spill.scan_root],
        ["fleet", f"{fleet.num_servers} servers ({fleet.label()})"],
        ["jobs replayed", str(args.jobs)],
        ["replay wall (s)", f"{wall:.2f}"],
        [
            "scan hit rate",
            f"{100.0 * float(stats.get('scan_hit_rate', 0.0)):.1f}%",
        ],
    ]
    if args.shards:
        rows.insert(2, ["shards", str(args.shards)])
        rows.extend(_per_shard_cache_rows(stats))
    if args.action == "spill":
        rows.append(["tier entries written", str(written)])
        title = "Scan tier — spilled from a cold replay"
    else:
        title = "Scan tier — warm-started replay"
    print(format_table(["metric", "value"], rows, title=title))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """``mapa cache``: inspect, exercise or clear the on-disk caches."""
    from .experiments import ResultStore, default_cache_dir

    store = ResultStore(args.cache_dir or default_cache_dir())
    if args.action in ("warm", "spill"):
        return _cache_tier_replay(args, store)
    if args.action == "stats":
        stats = store.disk_stats()
        rows = [
            ["cache dir", store.root],
            ["sweep entries", str(stats.entries)],
            [
                "sweep entry bytes",
                f"{stats.total_bytes} ({stats.total_mib:.2f} MiB)",
            ],
            ["json entries", str(stats.json_entries)],
            [
                "json entry bytes",
                f"{stats.json_bytes} ({stats.json_mib:.2f} MiB)",
            ],
            ["mlog payloads", str(stats.mlog_entries)],
            [
                "mlog payload bytes",
                f"{stats.mlog_bytes} ({stats.mlog_mib:.2f} MiB)",
            ],
            ["scan partitions", str(stats.scan_entries)],
            [
                "scan partition bytes",
                f"{stats.scan_bytes} ({stats.scan_mib:.2f} MiB)",
            ],
            ["orphaned files", str(stats.orphans)],
            ["orphaned bytes", str(stats.orphan_bytes)],
        ]
        if stats.scan_entries:
            from .experiments.spill import ScanSpillStore

            valid, corrupt = ScanSpillStore(root=store.root).verify()
            rows.append(
                ["scan partition audit", f"{valid} valid, {corrupt} corrupt"]
            )
        print(
            format_table(
                ["metric", "value"], rows, title="Sweep result cache (on disk)"
            )
        )
        print(
            "note: scan partitions are the persistent scan-cache tier "
            "(`mapa cache spill` populates it, `mapa cache warm` "
            "validates it); in-memory hit/miss counters are embedded in "
            "run output (`mapa trace`, `mapa scenario --fleet`)."
        )
        return 0
    guard = {} if args.tmp_age is None else {"tmp_age": args.tmp_age}
    removed, freed = store.clear(orphans_only=args.orphans, **guard)
    what = "orphaned file(s)" if args.orphans else "file(s)"
    print(f"removed {removed} {what} ({freed} bytes) from {store.root}")
    return 0


def _serve_config(args: argparse.Namespace):
    """A :class:`~repro.serve.DaemonConfig` from ``mapa serve`` flags."""
    from .serve import DaemonConfig

    return DaemonConfig(
        fleet=args.fleet,
        shards=args.shards,
        gpu_policy=args.policy,
        node_policy=args.node_policy,
        queue_limit=args.queue_limit,
        flush_window=args.flush_window,
        quota_gpus=args.quota_gpus,
        quota_requests=args.quota_requests,
        spill_root=args.spill_dir,
        metrics_json=args.metrics_json,
        drain_grace=args.drain_grace,
        shard_mode=args.mode,
    )


def _serve_bench(args: argparse.Namespace) -> int:
    """``mapa serve --bench``: self-hosted load run, prints req/s."""
    import tempfile

    from .serve import (
        AllocationClient,
        bench_jobs,
        run_load,
        start_daemon_thread,
    )

    with tempfile.TemporaryDirectory(prefix="mapa-serve-") as tmp:
        socket_path = args.socket or os.path.join(tmp, "mapa.sock")
        handle = start_daemon_thread(
            _serve_config(args), socket_path=socket_path
        )
        jobs = bench_jobs(args.bench_jobs, seed=args.seed, fleet=args.fleet)
        with AllocationClient(socket_path=socket_path) as client:
            report = run_load(
                client,
                jobs,
                window=args.bench_window,
                max_active=args.bench_active,
            )
            stats = client.stats()
            summary = client.drain()
        handle.join(timeout=60)
    counters = stats["counters"]
    rows = [
        ["fleet", args.fleet],
        ["backend", f"{args.shards} shards" if args.shards else "single"],
        ["jobs submitted", str(report.submitted)],
        ["requests (incl. releases)", str(report.requests)],
        ["allocated / noroom", f"{report.allocated} / {report.noroom}"],
        ["duration (s)", f"{report.duration:.2f}"],
        ["requests/sec", f"{report.requests_per_sec:.0f}"],
        ["dispatches", str(counters["dispatches"])],
        ["batched dispatches", str(counters["batched_dispatches"])],
        ["max batch", str(counters["max_batch"])],
        ["spilled entries", str(summary.get("spilled_entries", 0))],
    ]
    line = _scan_cache_line(stats.get("cache"))
    if line is not None:
        rows.append(["scan cache", line])
    print(format_table(["metric", "value"], rows, title="Serve bench"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``mapa serve``: run the allocation daemon in the foreground."""
    import asyncio
    import signal

    if args.bench:
        return _serve_bench(args)
    if (args.socket is None) == (args.port is None):
        print("serve: exactly one of --socket/--port is required",
              file=sys.stderr)
        return 2
    from .serve import AllocationDaemon

    try:
        daemon = AllocationDaemon(_serve_config(args))
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2

    async def run() -> None:
        await daemon.start(socket_path=args.socket, port=args.port)
        loop = asyncio.get_running_loop()

        async def signal_drain() -> None:
            await daemon.drain()
            daemon._shutdown.set()

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(signal_drain())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        where = args.socket or f"{args.host}:{daemon.port}"
        print(f"mapa serve: listening on {where}", flush=True)
        await daemon.serve_until_drained()

    asyncio.run(run())
    counters = daemon.metrics.as_dict()
    print(
        f"mapa serve: drained — {counters['allocated']} allocated, "
        f"{counters['released']} released, "
        f"{counters['forced_releases']} forced, "
        f"{counters['spilled_entries']} cache entries spilled"
    )
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """``mapa client``: one request against a running daemon."""
    import json as _json

    from .serve import AllocationClient

    try:
        client = AllocationClient(
            socket_path=args.socket, host=args.host, port=args.port,
            timeout=args.timeout,
        )
    except (OSError, ValueError) as exc:
        print(f"client: {exc}", file=sys.stderr)
        return 2
    with client:
        try:
            if args.action == "submit":
                if args.job is None:
                    print("client: submit needs --job", file=sys.stderr)
                    return 2
                response = client.submit(
                    args.job,
                    gpus=args.gpus,
                    pattern=args.pattern,
                    workload=args.workload,
                    sensitive=not args.insensitive,
                    tenant=args.tenant,
                    wait=not args.no_wait,
                )
            elif args.action in ("release", "query"):
                if args.job is None:
                    print(f"client: {args.action} needs --job",
                          file=sys.stderr)
                    return 2
                response = getattr(client, args.action)(args.job)
            elif args.action == "stats":
                response = client.stats()
            elif args.action == "drain":
                response = client.drain()
            else:
                response = client.ping()
        except (ConnectionError, OSError) as exc:
            print(f"client: {exc}", file=sys.stderr)
            return 2
    print(_json.dumps(response, indent=2, sort_keys=True))
    status = response.get("status") if isinstance(response, dict) else None
    if status == "error":
        return 2
    if status in ("rejected", "noroom", "unknown"):
        return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """``mapa fleet``: sharded fleet-scale replay, digest and counters.

    Replays the fleet benchmark's deterministic MMPP scenario through
    :class:`~repro.cluster.ShardedFleetScheduler`, so the printed digest
    for the default fleet/jobs/seed is directly comparable with
    ``benchmarks/BENCH_fleet_shard.json`` — and invariant in the shard
    count, which is the whole point.
    """
    import hashlib
    import json
    import time as _time

    from .cluster import ShardedFleetScheduler, ShardedFleetSimulator
    from .scenarios import FleetSpec, MMPPArrivals, ScenarioSpec, mixed_fleet

    try:
        fleet = (
            FleetSpec.parse(args.fleet)
            if args.fleet
            else mixed_fleet(args.servers)
        )
        spec = ScenarioSpec(
            num_jobs=args.jobs,
            seed=args.seed,
            arrival=MMPPArrivals(
                quiet_rate=1.0,
                burst_rate=20.0,
                quiet_dwell=300.0,
                burst_dwell=60.0,
            ),
            name="fleet-scale",
        ).resolve(fleet.min_gpus_per_server())
        job_file = spec.build()
        scheduler = ShardedFleetScheduler(
            fleet,
            args.shards,
            gpu_policy=args.policy,
            node_policy=args.node_policy,
            engine=args.engine,
            mode=args.mode,
        )
    except ValueError as exc:
        print(f"fleet: {exc}", file=sys.stderr)
        return 2
    with scheduler:
        sim = ShardedFleetSimulator(scheduler)
        started = _time.perf_counter()
        log = sim.run(job_file)
        wall = _time.perf_counter() - started
        if args.check:
            scheduler.check_mirror()
    digest = hashlib.sha256(
        json.dumps(log.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()
    stats = log.cache_stats or {}
    rows = [
        ["fleet", f"{fleet.num_servers} servers ({fleet.label()})"],
        ["shards", f"{args.shards} ({args.mode})"],
        ["jobs replayed", str(len(log))],
        ["replay wall (s)", f"{wall:.2f}"],
        ["throughput (jobs/s)", f"{len(log) / wall:.0f}"],
        ["simulated makespan (s)", f"{log.makespan:.0f}"],
        ["log digest (sha256)", digest],
    ]
    cache_line = _scan_cache_line(stats)
    if cache_line is not None:
        rows.append(["scan cache", cache_line])
    rows.extend(_per_shard_cache_rows(stats))
    if args.check:
        rows.append(["mirror check", "consistent"])
    print(
        format_table(
            ["metric", "value"],
            rows,
            title="Sharded fleet replay — shard-count-invariant digest",
        )
    )
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    """``mapa fit``: refit Eq. 2 for a topology, print coefficients."""
    hw = by_name(args.topology)
    model, quality, samples = fit_for_hardware(hw)
    rows = [
        [f"θ{i+1}", FEATURE_NAMES[i], PAPER_COEFFICIENTS[i], model.coefficients[i]]
        for i in range(len(FEATURE_NAMES))
    ]
    print(
        format_table(
            ["coeff", "feature", "paper", "refit"],
            rows,
            title=f"Eq. 2 coefficients — {hw.name} ({len(samples)} census samples)",
        )
    )
    print(
        f"fit quality: rel.err={quality.relative_error:.4f} "
        f"RMSE={quality.rmse:.3f} MAE={quality.mae:.3f} R²={quality.r_squared:.4f}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """``mapa report``: regenerate the markdown reproduction report."""
    from .analysis.report import generate_report, write_report

    if args.output:
        write_report(
            args.output,
            num_jobs=args.jobs,
            seed=args.seed,
            topologies=args.topologies,
        )
        print(f"report written to {args.output}")
    else:
        print(
            generate_report(
                num_jobs=args.jobs, seed=args.seed, topologies=args.topologies
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full ``mapa`` argparse tree (also rendered by ``repro.docgen``)."""
    parser = argparse.ArgumentParser(
        prog="mapa", description="MAPA (SC '21) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topos", help="list server topologies").set_defaults(
        func=_cmd_topos
    )

    p_alloc = sub.add_parser("alloc", help="allocate one pattern on an idle server")
    p_alloc.add_argument(
        "--topology", default="dgx1-v100", help="server topology name (see `mapa topos`)"
    )
    p_alloc.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="pattern-selection policy",
    )
    p_alloc.add_argument(
        "--pattern", default="ring", help="application pattern (ring, tree, star, …)"
    )
    p_alloc.add_argument("--gpus", type=int, default=3, help="GPUs requested")
    p_alloc.add_argument(
        "--insensitive", action="store_true", help="mark the job bandwidth-insensitive"
    )
    p_alloc.set_defaults(func=_cmd_alloc)

    p_trace = sub.add_parser("trace", help="simulate a job trace under all policies")
    p_trace.add_argument(
        "--topology", default="dgx1-v100", help="server topology name (see `mapa topos`)"
    )
    p_trace.add_argument(
        "--jobs", type=int, default=300, help="number of jobs to generate"
    )
    p_trace.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_trace.add_argument("--jobfile", help="CSV job file to replay instead")
    p_trace.add_argument(
        "--scheduling",
        default="fifo",
        choices=tuple(DISCIPLINES),  # live view: includes registered plugins
        help="queue discipline for the simulated dispatcher",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a topology×policy×discipline grid in parallel, with caching",
    )
    p_sweep.add_argument(
        "--grid",
        nargs="*",
        default=[],
        metavar="AXIS=V1,V2",
        help=(
            "grid axes as axis=value[,value...] items; axes: topology, "
            "policy, discipline; 'all' expands an axis to every "
            "registered value (default grid: dgx1-v100 × the four "
            "policies × fifo)"
        ),
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes for cache misses"
    )
    p_sweep.add_argument(
        "--trace-jobs", type=int, default=300, help="jobs in the generated trace"
    )
    p_sweep.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_sweep.add_argument(
        "--max-gpus",
        type=int,
        default=5,
        help="largest GPU request (clamped to each topology's size)",
    )
    p_sweep.add_argument(
        "--model",
        default="refit",
        choices=("refit", "paper"),
        help="Eq. 2 scoring model: per-topology refit or paper coefficients",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p_sweep.add_argument(
        "--cache-dir",
        help="result-cache directory (default: $MAPA_SWEEP_CACHE or "
        ".mapa_sweep_cache)",
    )
    p_sweep.add_argument(
        "--format",
        default="table",
        choices=("table", "json", "csv"),
        help="output format for the per-cell summary",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_scen = sub.add_parser(
        "scenario",
        help=(
            "generate a stochastic scenario; describe, export, "
            "fleet-replay or sweep it"
        ),
        description=(
            "Generate a seeded stochastic scenario trace (arrival process "
            "× job mix).  By default a summary is printed; --output saves "
            "the trace as a replayable CSV, --fleet replays it on a "
            "heterogeneous multi-server fleet, and --grid sweeps it "
            "through the cached experiment grid exactly like a paper "
            "trace."
        ),
    )
    from .cluster import NODE_POLICIES
    from .scenarios import ARRIVAL_KINDS, MIX_PRESETS

    p_scen.add_argument(
        "--arrival",
        default="poisson",
        choices=tuple(ARRIVAL_KINDS),  # live view of the registry
        help="arrival process shaping the submit times",
    )
    p_scen.add_argument(
        "--rate",
        type=float,
        default=1.0,
        help="arrival rate in jobs/s (poisson), or the diurnal trough rate",
    )
    p_scen.add_argument(
        "--peak-rate",
        type=float,
        default=4.0,
        help="diurnal peak rate (jobs/s)",
    )
    p_scen.add_argument(
        "--period",
        type=float,
        default=86400.0,
        help="diurnal period in seconds (default: one day)",
    )
    p_scen.add_argument(
        "--quiet-rate", type=float, default=0.2, help="MMPP quiet-state rate (jobs/s)"
    )
    p_scen.add_argument(
        "--burst-rate", type=float, default=5.0, help="MMPP burst-state rate (jobs/s)"
    )
    p_scen.add_argument(
        "--quiet-dwell",
        type=float,
        default=600.0,
        help="MMPP mean quiet-state dwell time (s)",
    )
    p_scen.add_argument(
        "--burst-dwell",
        type=float,
        default=60.0,
        help="MMPP mean burst-state dwell time (s)",
    )
    p_scen.add_argument(
        "--mix",
        default="paper",
        choices=tuple(MIX_PRESETS),  # live view of the registry
        help="workload × GPU-size mix preset",
    )
    p_scen.add_argument(
        "--num-jobs", type=int, default=300, help="jobs in the generated scenario"
    )
    p_scen.add_argument(
        "--seed", type=int, default=2021, help="scenario RNG seed"
    )
    p_scen.add_argument(
        "--output",
        help=(
            "write the generated trace to this CSV file (with --fleet, "
            "the resolved trace the replay consumes; not valid with "
            "--grid)"
        ),
    )
    p_scen.add_argument(
        "--fleet",
        help=(
            "replay on a heterogeneous fleet given as topo[:count] groups, "
            "e.g. dgx1-v100:40,dgx1-p100:16,dgx2:8"
        ),
    )
    p_scen.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="GPU-selection policy inside each node (fleet replay)",
    )
    p_scen.add_argument(
        "--node-policy",
        default="first-fit",
        choices=NODE_POLICIES,
        help="server-selection policy (fleet replay)",
    )
    p_scen.add_argument(
        "--scheduling",
        default="fifo",
        choices=tuple(DISCIPLINES),  # live view: includes registered plugins
        help="queue discipline (fleet replay)",
    )
    p_scen.add_argument(
        "--grid",
        nargs="*",
        default=None,
        metavar="AXIS=V1,V2",
        help=(
            "sweep this scenario through a topology/policy/discipline "
            "grid (same syntax as `mapa sweep --grid`; pass with no "
            "items for the default grid)"
        ),
    )
    p_scen.add_argument(
        "--workers", type=int, default=1, help="sweep worker processes"
    )
    p_scen.add_argument(
        "--model",
        default="refit",
        choices=("refit", "paper"),
        help="Eq. 2 scoring model for sweeps",
    )
    p_scen.add_argument(
        "--no-cache", action="store_true", help="disable the sweep result cache"
    )
    p_scen.add_argument(
        "--cache-dir",
        help="sweep result-cache directory (default: $MAPA_SWEEP_CACHE or "
        ".mapa_sweep_cache)",
    )
    p_scen.add_argument(
        "--format",
        default="table",
        choices=("table", "json", "csv"),
        help="sweep output format",
    )
    p_scen.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "with --fleet: replay through this many scheduler shards "
            "(0 = the classic single-scheduler path; FIFO only, "
            "shardable node policies only; the log is byte-identical "
            "either way)"
        ),
    )
    p_scen.add_argument(
        "--dynamics",
        help=(
            "seeded fleet-chaos axis as key=value pairs, e.g. "
            "'seed=7,horizon=600,failures=3,grows=1,shrinks=1,"
            "preemptions=5,casualty=requeue,victim=youngest' — server "
            "failure/repair, autoscale and preemption events injected "
            "into the replay (FIFO only; hashes into sweep cells like "
            "any other scenario axis)"
        ),
    )
    p_scen.set_defaults(func=_cmd_scenario)

    p_cache = sub.add_parser(
        "cache",
        help="inspect, exercise or clear the on-disk caches",
        description=(
            "Maintain the content-addressed caches on disk: `stats` "
            "reports entry counts, bytes and orphaned debris for both "
            "tiers (sweep results and spilled scan partitions); `clear` "
            "deletes cached files (everything, or just the orphans with "
            "--orphans); `spill` replays a deterministic scenario cold "
            "and writes its scan winners into the persistent scan tier; "
            "`warm` replays the same scenario with a cache warm-started "
            "from the tier and reports the first-pass hit rate.  "
            "Everything here regenerates on demand, so clearing is "
            "always safe."
        ),
    )
    p_cache.add_argument(
        "action",
        choices=("stats", "clear", "warm", "spill"),
        help="report disk usage, delete cached files, or exercise the "
        "persistent scan tier",
    )
    p_cache.add_argument(
        "--cache-dir",
        help="result-cache directory (default: $MAPA_SWEEP_CACHE or "
        ".mapa_sweep_cache)",
    )
    p_cache.add_argument(
        "--orphans",
        action="store_true",
        help="with `clear`: delete only orphaned debris, keep valid entries",
    )
    p_cache.add_argument(
        "--tmp-age",
        type=float,
        default=None,
        help="with `clear --orphans`: minimum age (seconds) before a "
        "leaked .tmp-* file is considered abandoned and deleted "
        "(default: 1 hour; 0 sweeps them all — only safe with no "
        "writers running)",
    )
    p_cache.add_argument(
        "--fleet",
        default="dgx1-v100:3,dgx2:1",
        help="with `warm`/`spill`: fleet spec, topo[:count],… "
        "(see `mapa topos`)",
    )
    p_cache.add_argument(
        "--jobs",
        type=int,
        default=500,
        help="with `warm`/`spill`: jobs in the replayed scenario",
    )
    p_cache.add_argument(
        "--seed",
        type=int,
        default=2021,
        help="with `warm`/`spill`: scenario seed",
    )
    p_cache.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="with `warm`/`spill`: GPU-selection policy",
    )
    p_cache.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "with `warm`/`spill`: replay through this many scheduler "
            "shards, each with its own scan cache attached to the one "
            "on-disk tier (0 = single scheduler); reports per-shard "
            "hit rates"
        ),
    )
    p_cache.set_defaults(func=_cmd_cache)

    p_serve = sub.add_parser(
        "serve",
        help="run the allocation daemon (allocation-as-a-service)",
        description=(
            "Host a MAPA scheduler behind a long-running socket speaking "
            "newline-delimited JSON (see `mapa client`).  The daemon "
            "owns admission control (bounded wait queue, per-tenant "
            "quotas), batches submits arriving within one flush window "
            "into a single scheduler dispatch, and on drain spills the "
            "warm scan cache to the persistent tier so a restart starts "
            "hot.  --shards N swaps the in-process scheduler for the "
            "sharded fleet scheduler behind the same protocol.  --bench "
            "self-hosts a daemon, pumps a seeded scenario through it "
            "and reports sustained requests/sec."
        ),
    )
    p_serve.add_argument("--socket", help="unix socket path to listen on")
    p_serve.add_argument(
        "--port", type=int, help="TCP port to listen on (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    p_serve.add_argument(
        "--fleet",
        default="dgx1-v100:40,dgx1-p100:16,dgx2:8",
        help="fleet spec, topo[:count],… (see `mapa topos`)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="scheduler shards (0 = single in-process scheduler)",
    )
    p_serve.add_argument(
        "--mode",
        default="process",
        choices=("process", "inline"),
        help="shard execution mode (inline = same-process, for tests)",
    )
    p_serve.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="GPU-selection policy",
    )
    p_serve.add_argument(
        "--node-policy",
        default="first-fit",
        choices=("first-fit", "pack", "spread"),
        help="server-selection policy (shardable subset)",
    )
    p_serve.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="max submits waiting or pending before queue-full rejection",
    )
    p_serve.add_argument(
        "--flush-window",
        type=float,
        default=0.0,
        help="seconds to coalesce arrivals into one dispatch (0 = "
        "dispatch whatever each loop wake collected)",
    )
    p_serve.add_argument(
        "--quota-gpus",
        type=int,
        help="per-tenant cap on outstanding GPUs (default: none)",
    )
    p_serve.add_argument(
        "--quota-requests",
        type=int,
        help="per-tenant cap on outstanding jobs (default: none)",
    )
    p_serve.add_argument(
        "--spill-dir",
        help="cache root for the persistent scan tier (warm start on "
        "boot, spill on drain)",
    )
    p_serve.add_argument(
        "--metrics-json",
        help="write the final metrics snapshot to this file on drain",
    )
    p_serve.add_argument(
        "--drain-grace",
        type=float,
        default=2.0,
        help="seconds to wait for voluntary releases before forcing",
    )
    p_serve.add_argument(
        "--bench",
        action="store_true",
        help="self-hosted load run: start a daemon, pump a seeded "
        "scenario through it, report requests/sec",
    )
    p_serve.add_argument(
        "--bench-jobs",
        type=int,
        default=2000,
        help="with --bench: jobs in the load run",
    )
    p_serve.add_argument(
        "--seed", type=int, default=11, help="with --bench: scenario seed"
    )
    p_serve.add_argument(
        "--bench-window",
        type=int,
        default=64,
        help="with --bench: max in-flight requests on the wire",
    )
    p_serve.add_argument(
        "--bench-active",
        type=int,
        default=48,
        help="with --bench: live allocations kept before releasing "
        "the oldest",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client",
        help="talk to a running allocation daemon",
        description=(
            "One request against a `mapa serve` daemon: submit a GPU "
            "request (blocking until allocated unless --no-wait), "
            "release or query a job, fetch the metrics snapshot, or "
            "drain the daemon.  Prints the JSON response; exit code 0 "
            "on success, 1 on rejected/noroom/unknown, 2 on errors."
        ),
    )
    p_client.add_argument(
        "action",
        choices=("submit", "release", "query", "stats", "drain", "ping"),
        help="operation to perform",
    )
    p_client.add_argument("--socket", help="daemon's unix socket path")
    p_client.add_argument("--port", type=int, help="daemon's TCP port")
    p_client.add_argument(
        "--host", default="127.0.0.1", help="daemon's TCP host"
    )
    p_client.add_argument("--job", help="job id (submit/release/query)")
    p_client.add_argument(
        "--gpus", type=int, default=1, help="GPUs to request (submit)"
    )
    p_client.add_argument(
        "--pattern", default="ring", help="communication pattern (submit)"
    )
    p_client.add_argument(
        "--workload",
        default="resnet-50",
        help="catalog workload profile (submit)",
    )
    p_client.add_argument(
        "--tenant", default="default", help="tenant bucket (submit)"
    )
    p_client.add_argument(
        "--insensitive",
        action="store_true",
        help="submit as bandwidth-insensitive",
    )
    p_client.add_argument(
        "--no-wait",
        action="store_true",
        help="answer noroom immediately instead of queueing",
    )
    p_client.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="socket timeout in seconds",
    )
    p_client.set_defaults(func=_cmd_client)

    p_fleet = sub.add_parser(
        "fleet",
        help="sharded fleet-scale replay (multi-process scheduler shards)",
        description=(
            "Partition a heterogeneous fleet into N scheduler shards — "
            "worker processes sharing one read-only shared-memory "
            "topology segment — and replay a deterministic MMPP "
            "scenario.  Prints replay throughput, the canonical "
            "sha-256 log digest (invariant in the shard count, and for "
            "the default fleet/jobs/seed comparable with "
            "benchmarks/BENCH_fleet_shard.json), and aggregate plus "
            "per-shard scan-cache counters."
        ),
    )
    from .cluster import SHARDABLE_NODE_POLICIES

    p_fleet.add_argument(
        "--servers",
        type=int,
        default=64,
        help="fleet size for the representative mixed fleet "
        "(ignored when --fleet is given)",
    )
    p_fleet.add_argument(
        "--fleet",
        help="explicit fleet spec as topo[:count] groups, e.g. "
        "dgx1-v100:40,dgx1-p100:16,dgx2:8",
    )
    p_fleet.add_argument(
        "--jobs", type=int, default=10000, help="jobs in the replayed scenario"
    )
    p_fleet.add_argument(
        "--seed", type=int, default=2021, help="scenario RNG seed"
    )
    p_fleet.add_argument(
        "--shards", type=int, default=4, help="scheduler shard count"
    )
    p_fleet.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="GPU-selection policy inside each node",
    )
    p_fleet.add_argument(
        "--node-policy",
        default="first-fit",
        choices=SHARDABLE_NODE_POLICIES,
        help="server-selection policy (shardable subset)",
    )
    p_fleet.add_argument(
        "--engine",
        default="cached",
        choices=("cached", "batch", "scalar"),
        help="scan engine inside each shard (all bit-identical)",
    )
    p_fleet.add_argument(
        "--mode",
        default="process",
        choices=("process", "inline"),
        help="shard transport: worker processes over shared memory, "
        "or inline in-process shards (debugging)",
    )
    p_fleet.add_argument(
        "--check",
        action="store_true",
        help="verify routing mirrors against shard state after the replay",
    )
    p_fleet.set_defaults(func=_cmd_fleet)

    p_fit = sub.add_parser("fit", help="fit the Eq. 2 model for a topology")
    p_fit.add_argument(
        "--topology", default="dgx1-v100", help="server topology name (see `mapa topos`)"
    )
    p_fit.set_defaults(func=_cmd_fit)

    p_cluster = sub.add_parser(
        "cluster", help="compare node-selection policies on a server fleet"
    )
    p_cluster.add_argument(
        "--servers",
        nargs="+",
        default=["dgx1-v100", "dgx1-v100"],
        help="topology names, one per server",
    )
    p_cluster.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="GPU-selection policy inside each node",
    )
    p_cluster.add_argument(
        "--jobs", type=int, default=100, help="number of jobs to generate"
    )
    p_cluster.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_cluster.add_argument(
        "--scheduling",
        default="fifo",
        choices=tuple(DISCIPLINES),  # live view: includes registered plugins
        help="queue discipline for the cluster-wide dispatcher",
    )
    p_cluster.set_defaults(func=_cmd_cluster)

    p_report = sub.add_parser(
        "report", help="regenerate the full reproduction report (markdown)"
    )
    p_report.add_argument(
        "--jobs", type=int, default=300, help="number of jobs to generate"
    )
    p_report.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_report.add_argument("--output", help="write to file instead of stdout")
    p_report.add_argument(
        "--topologies",
        nargs="+",
        default=["dgx1-v100", "torus-2d-16", "cube-mesh-16"],
        help="topologies to include in the report",
    )
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
