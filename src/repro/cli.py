"""Command-line interface: ``mapa`` (or ``python -m repro``).

Subcommands
-----------
``topos``
    List registered server topologies.
``alloc``
    Allocate one pattern on an idle server and print the decision.
``trace``
    Generate (or load) a job trace, simulate all four policies and print
    the Table-3-style summary.
``fit``
    Fit the Eq. 2 effective-bandwidth model for a topology and print the
    coefficients next to the paper's.
``sweep``
    Expand a declarative topology×policy×discipline grid, simulate the
    cells in parallel worker processes with content-hash result caching,
    and print a per-cell summary (table, JSON or CSV).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.tables import format_table
from .appgraph import patterns
from .allocator.mapa import Mapa
from .policies.base import AllocationRequest
from .policies.registry import POLICY_NAMES, make_policy
from .scoring.effective import FEATURE_NAMES, PAPER_COEFFICIENTS
from .scoring.regression import fit_for_hardware
from .sim.cluster import run_all_policies
from .sim.disciplines import DISCIPLINES
from .sim.metrics import TABLE3_QUANTILES, speedup_summary
from .topology.builders import TOPOLOGY_BUILDERS, by_name
from .workloads.generator import generate_job_file
from .workloads.jobs import JobFile


def _cmd_topos(_: argparse.Namespace) -> int:
    """``mapa topos``: print the registered server topologies."""
    rows = []
    for name in sorted(TOPOLOGY_BUILDERS):
        hw = by_name(name)
        rows.append(
            [
                name,
                hw.num_gpus,
                sum(1 for _ in hw.nvlink_links()),
                f"{hw.aggregate_bandwidth():.0f}",
            ]
        )
    print(
        format_table(
            ["topology", "gpus", "nvlinks", "total BW (GB/s)"], rows,
            title="Registered server topologies",
        )
    )
    return 0


def _cmd_alloc(args: argparse.Namespace) -> int:
    """``mapa alloc``: one allocation on an idle server, scores printed."""
    hw = by_name(args.topology)
    policy = make_policy(args.policy)
    mapa = Mapa(hw, policy)
    pattern = patterns.by_name(args.pattern, args.gpus)
    request = AllocationRequest(
        pattern=pattern, bandwidth_sensitive=not args.insensitive
    )
    allocation = mapa.try_allocate(request)
    if allocation is None:
        print("allocation failed: not enough free GPUs")
        return 1
    print(f"policy     : {policy.name}")
    print(f"topology   : {hw.name}")
    print(f"pattern    : {pattern.name} ({args.gpus} GPUs)")
    print(f"allocation : {allocation.gpus}")
    for key, value in sorted(allocation.scores.items()):
        print(f"  {key:<14}= {value:.3f}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``mapa trace``: simulate a trace under all four policies."""
    hw = by_name(args.topology)
    if args.jobfile:
        job_file = JobFile.load(args.jobfile)
    else:
        job_file = generate_job_file(
            num_jobs=args.jobs, seed=args.seed, max_gpus=min(5, hw.num_gpus)
        )
    model, _, _ = fit_for_hardware(hw)
    logs = run_all_policies(hw, job_file, model, scheduling=args.scheduling)
    summaries = speedup_summary(logs)
    headers = ["Policy"] + [name for name, _ in TABLE3_QUANTILES] + ["Tput"]
    rows = [[s.policy] + [f"{v:.3f}" for v in s.row()] for s in summaries]
    print(
        format_table(
            headers,
            rows,
            title=(
                f"Normalized speedup vs baseline — {hw.name}, "
                f"{len(job_file)} jobs ({args.scheduling}, sensitive jobs)"
            ),
        )
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """``mapa cluster``: compare node policies on a server fleet."""
    import numpy as np

    from .cluster import NODE_POLICIES, run_cluster

    servers = [by_name(name) for name in args.servers]
    job_file = generate_job_file(
        num_jobs=args.jobs,
        seed=args.seed,
        max_gpus=min(5, min(hw.num_gpus for hw in servers)),
    )
    rows = []
    for node_policy in NODE_POLICIES:
        sim = run_cluster(
            servers,
            job_file,
            gpu_policy=args.policy,
            node_policy=node_policy,
            scheduling=args.scheduling,
        )
        sens = [r for r in sim.log.sensitive() if r.num_gpus > 1]
        mean_bw = float(np.mean([r.measured_effective_bw for r in sens])) if sens else 0.0
        rows.append(
            [
                node_policy,
                f"{sim.log.makespan:.0f}",
                f"{mean_bw:.1f}",
                " ".join(str(v) for v in sim.jobs_per_server().values()),
            ]
        )
    print(
        format_table(
            ["node policy", "makespan (s)", "mean sens. EffBW", "jobs/server"],
            rows,
            title=(
                f"Cluster of {len(servers)} servers "
                f"({', '.join(hw.name for hw in servers)}), "
                f"{len(job_file)} jobs, {args.policy} inside nodes, "
                f"{args.scheduling} queue"
            ),
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """``mapa sweep``: run a cached, parallel experiment grid."""
    import json

    from .analysis.export import sweep_to_csv
    from .experiments import (
        SUMMARY_COLUMNS,
        ResultStore,
        SweepRunner,
        TraceSpec,
        default_cache_dir,
        parse_grid,
    )

    try:
        spec = parse_grid(
            args.grid,
            trace=TraceSpec(
                num_jobs=args.trace_jobs, seed=args.seed, max_gpus=args.max_gpus
            ),
            model=args.model,
        )
        runner = SweepRunner(
            store=(
                None
                if args.no_cache
                else ResultStore(args.cache_dir or default_cache_dir())
            ),
            jobs=args.jobs,
        )
    except ValueError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    outcome = runner.run(spec)
    rows = outcome.summary_rows()
    if args.format == "json":
        print(
            json.dumps(
                {
                    "cells": [
                        dict(zip(SUMMARY_COLUMNS, row)) for row in rows
                    ],
                    "num_cells": outcome.num_cells,
                    "num_cached": outcome.num_cached,
                    "num_simulated": outcome.num_simulated,
                },
                indent=2,
            )
        )
    elif args.format == "csv":
        print(sweep_to_csv(outcome), end="")
    else:
        print(
            format_table(
                list(SUMMARY_COLUMNS),
                rows,
                title=(
                    f"Sweep: {len(spec.topologies)} topologies × "
                    f"{len(spec.policies)} policies × "
                    f"{len(spec.disciplines)} disciplines, "
                    f"{args.trace_jobs}-job trace (seed {args.seed})"
                ),
                float_fmt="{:.1f}",
            )
        )
    print(
        f"sweep: {outcome.num_cells} cells, {outcome.num_cached} cached, "
        f"{outcome.num_simulated} simulated "
        f"({args.jobs} worker{'s' if args.jobs != 1 else ''}, "
        f"{outcome.elapsed:.1f}s)",
        file=sys.stderr,
    )
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    """``mapa fit``: refit Eq. 2 for a topology, print coefficients."""
    hw = by_name(args.topology)
    model, quality, samples = fit_for_hardware(hw)
    rows = [
        [f"θ{i+1}", FEATURE_NAMES[i], PAPER_COEFFICIENTS[i], model.coefficients[i]]
        for i in range(len(FEATURE_NAMES))
    ]
    print(
        format_table(
            ["coeff", "feature", "paper", "refit"],
            rows,
            title=f"Eq. 2 coefficients — {hw.name} ({len(samples)} census samples)",
        )
    )
    print(
        f"fit quality: rel.err={quality.relative_error:.4f} "
        f"RMSE={quality.rmse:.3f} MAE={quality.mae:.3f} R²={quality.r_squared:.4f}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """``mapa report``: regenerate the markdown reproduction report."""
    from .analysis.report import generate_report, write_report

    if args.output:
        write_report(
            args.output,
            num_jobs=args.jobs,
            seed=args.seed,
            topologies=args.topologies,
        )
        print(f"report written to {args.output}")
    else:
        print(
            generate_report(
                num_jobs=args.jobs, seed=args.seed, topologies=args.topologies
            )
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full ``mapa`` argparse tree (also rendered by ``repro.docgen``)."""
    parser = argparse.ArgumentParser(
        prog="mapa", description="MAPA (SC '21) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("topos", help="list server topologies").set_defaults(
        func=_cmd_topos
    )

    p_alloc = sub.add_parser("alloc", help="allocate one pattern on an idle server")
    p_alloc.add_argument(
        "--topology", default="dgx1-v100", help="server topology name (see `mapa topos`)"
    )
    p_alloc.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="pattern-selection policy",
    )
    p_alloc.add_argument(
        "--pattern", default="ring", help="application pattern (ring, tree, star, …)"
    )
    p_alloc.add_argument("--gpus", type=int, default=3, help="GPUs requested")
    p_alloc.add_argument(
        "--insensitive", action="store_true", help="mark the job bandwidth-insensitive"
    )
    p_alloc.set_defaults(func=_cmd_alloc)

    p_trace = sub.add_parser("trace", help="simulate a job trace under all policies")
    p_trace.add_argument(
        "--topology", default="dgx1-v100", help="server topology name (see `mapa topos`)"
    )
    p_trace.add_argument(
        "--jobs", type=int, default=300, help="number of jobs to generate"
    )
    p_trace.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_trace.add_argument("--jobfile", help="CSV job file to replay instead")
    p_trace.add_argument(
        "--scheduling",
        default="fifo",
        choices=tuple(DISCIPLINES),  # live view: includes registered plugins
        help="queue discipline for the simulated dispatcher",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_sweep = sub.add_parser(
        "sweep",
        help="run a topology×policy×discipline grid in parallel, with caching",
    )
    p_sweep.add_argument(
        "--grid",
        nargs="*",
        default=[],
        metavar="AXIS=V1,V2",
        help=(
            "grid axes as axis=value[,value...] items; axes: topology, "
            "policy, discipline; 'all' expands an axis to every "
            "registered value (default grid: dgx1-v100 × the four "
            "policies × fifo)"
        ),
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes for cache misses"
    )
    p_sweep.add_argument(
        "--trace-jobs", type=int, default=300, help="jobs in the generated trace"
    )
    p_sweep.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_sweep.add_argument(
        "--max-gpus",
        type=int,
        default=5,
        help="largest GPU request (clamped to each topology's size)",
    )
    p_sweep.add_argument(
        "--model",
        default="refit",
        choices=("refit", "paper"),
        help="Eq. 2 scoring model: per-topology refit or paper coefficients",
    )
    p_sweep.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    p_sweep.add_argument(
        "--cache-dir",
        help="result-cache directory (default: $MAPA_SWEEP_CACHE or "
        ".mapa_sweep_cache)",
    )
    p_sweep.add_argument(
        "--format",
        default="table",
        choices=("table", "json", "csv"),
        help="output format for the per-cell summary",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_fit = sub.add_parser("fit", help="fit the Eq. 2 model for a topology")
    p_fit.add_argument(
        "--topology", default="dgx1-v100", help="server topology name (see `mapa topos`)"
    )
    p_fit.set_defaults(func=_cmd_fit)

    p_cluster = sub.add_parser(
        "cluster", help="compare node-selection policies on a server fleet"
    )
    p_cluster.add_argument(
        "--servers",
        nargs="+",
        default=["dgx1-v100", "dgx1-v100"],
        help="topology names, one per server",
    )
    p_cluster.add_argument(
        "--policy",
        default="preserve",
        choices=POLICY_NAMES,
        help="GPU-selection policy inside each node",
    )
    p_cluster.add_argument(
        "--jobs", type=int, default=100, help="number of jobs to generate"
    )
    p_cluster.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_cluster.add_argument(
        "--scheduling",
        default="fifo",
        choices=tuple(DISCIPLINES),  # live view: includes registered plugins
        help="queue discipline for the cluster-wide dispatcher",
    )
    p_cluster.set_defaults(func=_cmd_cluster)

    p_report = sub.add_parser(
        "report", help="regenerate the full reproduction report (markdown)"
    )
    p_report.add_argument(
        "--jobs", type=int, default=300, help="number of jobs to generate"
    )
    p_report.add_argument(
        "--seed", type=int, default=2021, help="trace-generator RNG seed"
    )
    p_report.add_argument("--output", help="write to file instead of stdout")
    p_report.add_argument(
        "--topologies",
        nargs="+",
        default=["dgx1-v100", "torus-2d-16", "cube-mesh-16"],
        help="topologies to include in the report",
    )
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
