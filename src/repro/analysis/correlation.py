"""Metric-correlation analyses (paper Figs. 11, 12, 15 and 16).

These helpers produce the scatter series behind the paper's methodology
figures: how AggBW fails to track execution time, how EffBW tracks it,
how the Eq. 2 prediction tracks the (simulated) measurement, and how the
simulator's effective bandwidth agrees with "real" runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm.microbench import peak_effective_bandwidth
from ..scoring.aggregate import allocation_aggregate_bandwidth
from ..scoring.census import census_of_allocation
from ..scoring.effective import EffectiveBandwidthModel
from ..sim.records import SimulationLog
from ..topology.hardware import HardwareGraph
from ..workloads.catalog import Workload
from ..workloads.exectime import execution_time


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0 when either side is constant)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need two equal-length series of ≥ 2 points")
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation — robust to the nonlinear (hyperbolic)
    EffBW→time relationship of Fig. 11c."""
    from scipy.stats import spearmanr

    rho = spearmanr(xs, ys).statistic
    return float(rho) if rho is not None else 0.0


@dataclass(frozen=True)
class AllocationPoint:
    """One enumerated allocation with all three quantities of Fig. 11."""

    gpus: Tuple[int, ...]
    agg_bw: float
    effective_bw: float
    exec_time: float


def enumerate_allocation_points(
    hardware: HardwareGraph,
    workload: Workload,
    sizes: Sequence[int] = (4, 5),
) -> List[AllocationPoint]:
    """AggBW / EffBW / exec-time for every allocation of the given sizes.

    Mirrors the paper's Fig. 11 experiment: run the workload (here: the
    execution-time model) on many candidate allocations and record both
    scoring metrics.  AggBW here is the induced aggregate over the
    allocation, matching how the microbenchmark exercises every link.
    """
    points: List[AllocationPoint] = []
    for k in sizes:
        for subset in combinations(hardware.gpus, k):
            agg = allocation_aggregate_bandwidth(hardware, subset)
            eff = peak_effective_bandwidth(hardware, subset)
            t = execution_time(workload, k, eff)
            points.append(AllocationPoint(subset, agg, eff, t))
    return points


def metric_correlations(points: Sequence[AllocationPoint]) -> Dict[str, float]:
    """The correlations the paper reads off Fig. 11 (a)–(c)."""
    agg = [p.agg_bw for p in points]
    eff = [p.effective_bw for p in points]
    t = [p.exec_time for p in points]
    return {
        "aggbw_vs_time": spearman(agg, t),
        "aggbw_vs_effbw": spearman(agg, eff),
        "effbw_vs_time": spearman(eff, t),
    }


def predicted_vs_actual(
    hardware: HardwareGraph,
    model: EffectiveBandwidthModel,
    sizes: Sequence[int] = (2, 3, 4, 5),
) -> Dict[int, List[Tuple[float, float]]]:
    """(actual, predicted) EffBW pairs per job size — Fig. 12's scatter."""
    out: Dict[int, List[Tuple[float, float]]] = {k: [] for k in sizes}
    for k in sizes:
        for subset in combinations(hardware.gpus, k):
            actual = peak_effective_bandwidth(hardware, subset)
            census = census_of_allocation(hardware, subset)
            out[k].append((actual, model.predict_census(census)))
    return out


def simulated_vs_reference(
    log: SimulationLog,
) -> List[Tuple[float, float]]:
    """(reference, simulated) EffBW pairs from a trace — Fig. 15's scatter.

    The simulator logs both the microbenchmark-model bandwidth (standing
    in for the real measurement) and the Eq. 2 prediction it used for
    scoring; their agreement validates the effective-bandwidth proxy.
    """
    return [
        (r.measured_effective_bw, r.predicted_effective_bw)
        for r in log.multi_gpu()
    ]


def effbw_time_curve(
    workload: Workload,
    effective_bws: Sequence[float],
    num_gpus: int = 4,
) -> List[Tuple[float, float]]:
    """(EffBW, exec time) series for one workload — one Fig. 16 curve."""
    return [
        (bw, execution_time(workload, num_gpus, bw)) for bw in effective_bws
    ]
