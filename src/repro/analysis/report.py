"""One-shot reproduction report.

Regenerates the headline experiments (fragmentation, metric evaluation,
model fit, DGX-V policy comparison, 16-GPU exploration) and renders them
as a single markdown document — the ``mapa report`` command.  Heavier
than any single benchmark (a few minutes of simulation) but entirely
self-contained.
"""

from __future__ import annotations

import io
from typing import Dict, Optional, Sequence

from ..policies.registry import make_policy
from ..scoring.effective import FEATURE_NAMES, PAPER_COEFFICIENTS
from ..scoring.regression import fit_for_hardware
from ..sim.cluster import run_all_policies, run_policy
from ..sim.metrics import (
    TABLE3_QUANTILES,
    boxplot_stats,
    effective_bw_distribution,
    speedup_summary,
)
from ..sim.utilization import summarize_utilization
from ..topology.builders import by_name
from ..workloads.generator import generate_job_file
from .fragmentation import quality_by_job_size, summarize_fragmentation
from .tables import format_boxplot_rows, format_table


def _md_block(text: str) -> str:
    return "```\n" + text + "\n```\n"


def generate_report(
    num_jobs: int = 300,
    seed: int = 2021,
    topologies: Sequence[str] = ("dgx1-v100", "torus-2d-16", "cube-mesh-16"),
) -> str:
    """Build the markdown reproduction report; returns the text."""
    out = io.StringIO()
    out.write("# MAPA reproduction report\n\n")
    out.write(
        f"Trace: {num_jobs} jobs, seed {seed}, uniform workload mix, "
        "uniform 1-5 GPU requests, FIFO.\n\n"
    )

    primary = by_name(topologies[0])
    model, quality, samples = fit_for_hardware(primary)

    # --- Eq. 2 fit ------------------------------------------------------
    out.write("## Effective-bandwidth model (Table 2)\n\n")
    rows = [
        [f"θ{i+1}", FEATURE_NAMES[i], PAPER_COEFFICIENTS[i], model.coefficients[i]]
        for i in range(len(FEATURE_NAMES))
    ]
    out.write(_md_block(format_table(
        ["coeff", "feature", "paper", "refit"], rows,
        title=f"{primary.name}: {len(samples)} census samples, "
              f"R²={quality.r_squared:.3f}",
    )))
    out.write("\n")

    # --- fragmentation (Fig. 4) -----------------------------------------
    out.write("## Fragmentation under Baseline (Fig. 4)\n\n")
    frag_trace = generate_job_file(100, seed=seed, min_gpus=2, max_gpus=5)
    frag_log = run_policy(primary, make_policy("baseline"), frag_trace, model)
    frag_rows = [
        [s.num_gpus, s.minimum, s.q1, s.median, s.q3, s.maximum]
        for s in summarize_fragmentation(quality_by_job_size(primary, frag_log))
    ]
    out.write(_md_block(format_table(
        ["NumGPUs", "min", "q1", "median", "q3", "max"],
        frag_rows,
        title="BW_Allocated / BW_IdealAllocation",
    )))
    out.write("\n")

    # --- per-topology policy comparison ----------------------------------
    for name in topologies:
        hw = by_name(name)
        topo_model, _, _ = fit_for_hardware(hw)
        trace = generate_job_file(
            num_jobs, seed=seed, max_gpus=min(5, hw.num_gpus)
        )
        logs = run_all_policies(hw, trace, topo_model)
        out.write(f"## {hw.name}: {num_jobs}-job policy comparison\n\n")
        stats = {
            p: boxplot_stats(effective_bw_distribution(log, sensitive=True))
            for p, log in logs.items()
        }
        out.write(_md_block(format_boxplot_rows(
            "Predicted EffBW (GB/s), sensitive jobs", stats
        )))
        headers = (
            ["Policy"] + [n for n, _ in TABLE3_QUANTILES] + ["Tput", "GPU util"]
        )
        rows = []
        for s in speedup_summary(logs):
            util = summarize_utilization(logs[s.policy], hw).gpu_utilization
            rows.append([s.policy] + [f"{v:.3f}" for v in s.row()] + [f"{util:.3f}"])
        out.write(_md_block(format_table(
            headers, rows, title="Speedup vs baseline (sensitive jobs)"
        )))
        out.write("\n")

    return out.getvalue()


def write_report(path: str, **kwargs) -> str:
    """Generate the report and write it to ``path``; returns the text."""
    text = generate_report(**kwargs)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
