"""Fragmentation analysis (paper Fig. 4 and section 2.2).

Quantifies allocation quality as ``BW_Allocated / BW_IdealAllocation``:
the aggregate pairwise bandwidth of the GPUs a job received, relative to
the best aggregate bandwidth any same-sized allocation on the idle server
achieves.  Running a trace under the Baseline policy and grouping the
ratio by job size reproduces the box plot of Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Mapping, Sequence, Tuple

from ..scoring.aggregate import ideal_allocation_bandwidth
from ..sim.records import JobRecord, SimulationLog
from ..topology.hardware import HardwareGraph


@lru_cache(maxsize=None)
def _ideal_bw_cached(hardware: HardwareGraph, num_gpus: int) -> float:
    return ideal_allocation_bandwidth(hardware, num_gpus)


def allocation_quality(
    hardware: HardwareGraph, gpus: Sequence[int]
) -> float:
    """``BW_Allocated / BW_IdealAllocation`` for one allocation.

    Single-GPU allocations have no interconnect and score a perfect 1.0.
    """
    k = len(set(gpus))
    if k <= 1:
        return 1.0
    ideal = _ideal_bw_cached(hardware, k)
    if ideal <= 0:
        return 1.0
    return hardware.aggregate_bandwidth(gpus) / ideal


def quality_by_job_size(
    hardware: HardwareGraph,
    log: SimulationLog,
    sizes: Sequence[int] = (2, 3, 4, 5),
) -> Dict[int, List[float]]:
    """Allocation-quality samples grouped by requested GPU count.

    This is the raw data behind the Fig. 4 box plot: run a trace under
    Baseline, then look at how far each job's allocation falls short of
    ideal.
    """
    out: Dict[int, List[float]] = {k: [] for k in sizes}
    for record in log.records:
        if record.num_gpus in out:
            out[record.num_gpus].append(
                allocation_quality(hardware, record.allocation)
            )
    return out


@dataclass(frozen=True)
class FragmentationSummary:
    """Quartiles of allocation quality for one job size."""

    num_gpus: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    samples: int


def summarize_fragmentation(
    quality: Mapping[int, Sequence[float]]
) -> List[FragmentationSummary]:
    """Box-plot statistics per job size."""
    import numpy as np

    out: List[FragmentationSummary] = []
    for k in sorted(quality):
        vals = np.asarray(quality[k], dtype=float)
        if vals.size == 0:
            continue
        out.append(
            FragmentationSummary(
                num_gpus=k,
                minimum=float(vals.min()),
                q1=float(np.quantile(vals, 0.25)),
                median=float(np.quantile(vals, 0.5)),
                q3=float(np.quantile(vals, 0.75)),
                maximum=float(vals.max()),
                samples=int(vals.size),
            )
        )
    return out
