"""Plain-text rendering of tables and figure series.

Benchmarks and examples print their results through these helpers so
every experiment emits the same paper-style rows regardless of where it
runs.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as an aligned ASCII table."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_sweep_summary(
    outcome,
    title: Optional[str] = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Render a sweep's per-cell summary as the standard ASCII table.

    The table twin of :func:`repro.analysis.export.sweep_to_csv`:
    both read through
    :meth:`~repro.experiments.runner.SweepOutcome.summary_rows`, whose
    aggregation is column-level — rendering the summary of a cached or
    zero-copy sweep never materialises a per-job record.
    """
    from ..experiments.runner import SUMMARY_COLUMNS

    return format_table(
        list(SUMMARY_COLUMNS),
        outcome.summary_rows(),
        title=title,
        float_fmt=float_fmt,
    )


def format_series(
    name: str,
    points: Iterable[Sequence[float]],
    labels: Sequence[str] = ("x", "y"),
    float_fmt: str = "{:.4g}",
) -> str:
    """Render an (x, y, ...) point series as labelled rows."""
    lines = [name]
    for pt in points:
        parts = [
            f"{lab}={float_fmt.format(v) if isinstance(v, float) else v}"
            for lab, v in zip(labels, pt)
        ]
        lines.append("  " + "  ".join(parts))
    return "\n".join(lines)


def format_boxplot_rows(
    title: str,
    stats_by_group: Mapping[object, Mapping[str, float]],
    float_fmt: str = "{:.2f}",
) -> str:
    """Render per-group box-plot statistics (min/q1/median/q3/max)."""
    headers = ["group", "min", "q1", "median", "q3", "max"]
    rows = [
        [
            str(group),
            s.get("min", float("nan")),
            s.get("q1", float("nan")),
            s.get("median", float("nan")),
            s.get("q3", float("nan")),
            s.get("max", float("nan")),
        ]
        for group, s in stats_by_group.items()
    ]
    return format_table(headers, rows, title=title, float_fmt=float_fmt)
