"""CSV export of experiment series, for external plotting.

Benchmarks print ASCII tables; these helpers emit the same data as CSV
so the paper's figures can be redrawn with any plotting tool.  Every
writer returns the CSV text and optionally writes it to a path.
"""

from __future__ import annotations

import io
from typing import Mapping, Optional, Sequence, Tuple


def series_to_csv(
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    path: Optional[str] = None,
) -> str:
    """Write a rectangular series as CSV; returns the text."""
    width = len(columns)
    buf = io.StringIO()
    buf.write(",".join(str(c) for c in columns) + "\n")
    for row in rows:
        if len(row) != width:
            raise ValueError(
                f"row width {len(row)} != header width {width}: {row!r}"
            )
        buf.write(",".join(_fmt(v) for v in row) + "\n")
    text = buf.getvalue()
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    text = str(value)
    if "," in text or '"' in text:
        text = '"' + text.replace('"', '""') + '"'
    return text


def boxplot_to_csv(
    stats_by_group: Mapping[object, Mapping[str, float]],
    group_column: str = "group",
    path: Optional[str] = None,
) -> str:
    """Export per-group box-plot statistics (min/q1/median/q3/max)."""
    columns = [group_column, "min", "q1", "median", "q3", "max"]
    rows = [
        [
            group,
            s.get("min", float("nan")),
            s.get("q1", float("nan")),
            s.get("median", float("nan")),
            s.get("q3", float("nan")),
            s.get("max", float("nan")),
        ]
        for group, s in stats_by_group.items()
    ]
    return series_to_csv(columns, rows, path)


def scatter_to_csv(
    points: Sequence[Tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    path: Optional[str] = None,
) -> str:
    """Export an (x, y) scatter (Figs. 11, 12, 15 style)."""
    return series_to_csv([x_label, y_label], [list(p) for p in points], path)


def log_to_csv(log, path: Optional[str] = None) -> str:
    """Export a :class:`~repro.sim.records.SimulationLog` (Fig. 14's log
    file) — thin wrapper so exports live in one module."""
    text = log.to_csv()
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def log_columns_to_csv(log, path: Optional[str] = None) -> str:
    """Export a log's *numeric* columns as CSV, without rehydration.

    The column-level sibling of :func:`log_to_csv`: reads through
    :meth:`~repro.sim.records.SimulationLog.numeric_columns` (plus the
    derived wait/execution times), so a log decoded lazily from the
    binary tier or a shared-memory arena is exported straight from its
    zero-copy buffers — no :class:`~repro.sim.records.JobRecord` is
    ever materialised.  String columns (workload, pattern, allocation)
    are deliberately absent; use :func:`log_to_csv` when you need them.
    """
    cols = log.numeric_columns()
    names = list(cols) + ["wait_time", "execution_time"]
    wait = cols["start_time"] - cols["submit_time"]
    exec_time = cols["finish_time"] - cols["start_time"]
    series = [cols[name] for name in cols] + [wait, exec_time]
    rows = [
        [float(col[i]) for col in series] for i in range(len(wait))
    ]
    return series_to_csv(names, rows, path)


def sweep_to_csv(outcome, path: Optional[str] = None) -> str:
    """Export a :class:`~repro.experiments.runner.SweepOutcome`'s
    per-cell summary (one row per grid cell) — what ``mapa sweep
    --format csv`` prints.  Summary rows aggregate through the logs'
    column readers, so a summary-only export of a cached or zero-copy
    sweep never rehydrates per-job records."""
    from ..experiments.runner import SUMMARY_COLUMNS

    return series_to_csv(list(SUMMARY_COLUMNS), outcome.summary_rows(), path)
