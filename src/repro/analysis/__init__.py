"""Analyses over simulation results: fragmentation, metric correlation
and table rendering."""

from .fragmentation import (
    FragmentationSummary,
    allocation_quality,
    quality_by_job_size,
    summarize_fragmentation,
)
from .correlation import (
    AllocationPoint,
    effbw_time_curve,
    enumerate_allocation_points,
    metric_correlations,
    pearson,
    predicted_vs_actual,
    simulated_vs_reference,
    spearman,
)
from .tables import format_boxplot_rows, format_series, format_table
from .export import boxplot_to_csv, log_to_csv, scatter_to_csv, series_to_csv
from .report import generate_report, write_report

__all__ = [
    "FragmentationSummary",
    "allocation_quality",
    "quality_by_job_size",
    "summarize_fragmentation",
    "AllocationPoint",
    "effbw_time_curve",
    "enumerate_allocation_points",
    "metric_correlations",
    "pearson",
    "predicted_vs_actual",
    "simulated_vs_reference",
    "spearman",
    "format_boxplot_rows",
    "format_series",
    "format_table",
    "boxplot_to_csv",
    "log_to_csv",
    "scatter_to_csv",
    "series_to_csv",
    "generate_report",
    "write_report",
]
