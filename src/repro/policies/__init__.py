"""Allocation policies: Baseline, Topo-aware, and MAPA's Greedy/Preserve."""

from .base import Allocation, AllocationPolicy, AllocationRequest
from .baseline import BaselinePolicy
from .greedy import GreedyPolicy
from .oracle import OraclePolicy
from .preserve import PreservePolicy
from .topo_aware import TopoAwarePolicy
from .registry import POLICY_NAMES, all_policies, make_policy
from .scan import (
    BatchScan,
    CachedScan,
    ScoredMatch,
    batch_scan,
    best_scored_match,
    best_subset_then_mapping,
    scan_scored_matches,
)

__all__ = [
    "Allocation",
    "AllocationPolicy",
    "AllocationRequest",
    "BaselinePolicy",
    "GreedyPolicy",
    "OraclePolicy",
    "PreservePolicy",
    "TopoAwarePolicy",
    "POLICY_NAMES",
    "all_policies",
    "make_policy",
    "BatchScan",
    "CachedScan",
    "ScoredMatch",
    "batch_scan",
    "best_scored_match",
    "best_subset_then_mapping",
    "scan_scored_matches",
]
