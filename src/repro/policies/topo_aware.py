"""Topo-aware comparator policy (Amaral et al., paper reference [7]).

Recursively bi-partitions the hardware topology into a tree and allocates
from the smallest subtree with enough free GPUs — in effect packing jobs
under a single PCIe tree / CPU socket whenever one fits.  The paper uses
this as the state-of-the-art comparator; it improves locality but is
unaware of the application's communication pattern and of link-type
heterogeneity inside a socket.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from ..matching.candidates import match_from_mapping
from ..topology.hardware import HardwareGraph
from ..topology.partition import (
    PartitionNode,
    build_partition_tree,
    smallest_fitting_subtree,
)
from .base import Allocation, AllocationPolicy, AllocationRequest


class TopoAwarePolicy(AllocationPolicy):
    """Recursive bi-partitioning allocation."""

    name = "topo-aware"

    def __init__(self) -> None:
        self._trees: Dict[HardwareGraph, PartitionNode] = {}

    def _tree_for(self, hardware: HardwareGraph) -> PartitionNode:
        """Memoised partition tree of one hardware graph."""
        tree = self._trees.get(hardware)
        if tree is None:
            tree = build_partition_tree(hardware)
            self._trees[hardware] = tree
        return tree

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        """Allocate from the smallest subtree with enough free GPUs."""
        if not self._feasible(request, available):
            return None
        tree = self._tree_for(hardware)
        chosen = smallest_fitting_subtree(tree, set(available), request.num_gpus)
        if chosen is None:
            return None
        match = match_from_mapping(request.pattern, chosen)
        return Allocation(gpus=chosen, match=match)
