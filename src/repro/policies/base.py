"""Allocation-policy interface shared by MAPA and the comparators.

A policy receives an :class:`AllocationRequest` (how many GPUs, which
communication pattern, whether the job is bandwidth sensitive) plus the
hardware graph and the set of currently free GPUs, and proposes an
:class:`Allocation` — or ``None`` when the request cannot be satisfied.
Policies are stateless with respect to jobs; hardware bookkeeping lives in
:class:`repro.allocator.state.AllocationState`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..appgraph.application import ApplicationGraph
from ..matching.candidates import Match
from ..topology.hardware import HardwareGraph


@dataclass(frozen=True)
class AllocationRequest:
    """One job's resource request."""

    pattern: ApplicationGraph
    bandwidth_sensitive: bool = True
    job_id: Optional[object] = None

    @property
    def num_gpus(self) -> int:
        return self.pattern.num_gpus


@dataclass(frozen=True)
class Allocation:
    """A policy's decision for one request."""

    gpus: Tuple[int, ...]
    match: Optional[Match] = None
    scores: Dict[str, float] = field(default_factory=dict)

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)


class AllocationPolicy(abc.ABC):
    """Base class for allocation policies."""

    #: Short policy name used in logs, tables and the CLI.
    name: str = "abstract"

    @abc.abstractmethod
    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        """Propose GPUs for ``request`` from ``available``, or ``None``."""

    def _feasible(self, request: AllocationRequest, available: FrozenSet[int]) -> bool:
        return request.num_gpus <= len(available)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
