"""Allocation-policy interface shared by MAPA and the comparators.

A policy receives an :class:`AllocationRequest` (how many GPUs, which
communication pattern, whether the job is bandwidth sensitive) plus the
hardware graph and the set of currently free GPUs, and proposes an
:class:`Allocation` — or ``None`` when the request cannot be satisfied.
Policies are stateless with respect to jobs; hardware bookkeeping lives in
:class:`repro.allocator.state.AllocationState`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import FrozenSet, Hashable, Mapping, Optional, Sequence, Tuple

from ..appgraph.application import ApplicationGraph
from ..matching.candidates import Match
from ..topology.hardware import HardwareGraph


@dataclass(frozen=True)
class AllocationRequest:
    """One job's resource request.

    ``job_id`` is any hashable identifier — the simulators use the
    integer ids from :class:`~repro.workloads.jobs.Job`, but callers
    driving the scheduler directly may use whatever they track jobs by.
    """

    pattern: ApplicationGraph
    bandwidth_sensitive: bool = True
    job_id: Optional[Hashable] = None

    def __post_init__(self) -> None:
        # Cached: a fleet replay probes num_gpus on every placement
        # attempt and candidate-server pass, so one attribute read
        # beats chasing pattern.num_gpus each time.  Not a field —
        # eq/hash/repr are unaffected.
        object.__setattr__(self, "_num_gpus", self.pattern.num_gpus)

    @property
    def num_gpus(self) -> int:
        """GPUs the pattern needs."""
        return self._num_gpus


@dataclass(frozen=True)
class Allocation:
    """A policy's decision for one request.

    Fully immutable: ``scores`` is wrapped in a read-only mapping view
    at construction, so a committed allocation can never be reshaped by
    downstream annotation or logging code.

    ``job_id`` is the handle the allocation was committed under.
    Policies leave it ``None`` (they only propose); the
    :class:`~repro.allocator.mapa.Mapa` engine fills it in when it
    commits — including the generated handle for anonymous requests —
    so the caller can always ``release()`` what it was given.
    """

    gpus: Tuple[int, ...]
    match: Optional[Match] = None
    scores: Mapping[str, float] = field(default_factory=dict)
    job_id: Optional[Hashable] = None

    def __post_init__(self) -> None:
        """Freeze ``scores`` behind a read-only mapping view."""
        object.__setattr__(self, "scores", MappingProxyType(dict(self.scores)))

    def rebind(self, job_id: Optional[Hashable]) -> "Allocation":
        """A copy of this allocation committed under ``job_id``.

        Shares the existing read-only ``scores`` view instead of
        re-copying the dict through ``__post_init__`` — the memoised
        decision paths re-commit identical winners thousands of times
        per replay, and every field of the clone is as immutable as the
        original's.
        """
        clone = object.__new__(Allocation)
        object.__setattr__(clone, "gpus", self.gpus)
        object.__setattr__(clone, "match", self.match)
        object.__setattr__(clone, "scores", self.scores)
        object.__setattr__(clone, "job_id", job_id)
        return clone

    @property
    def num_gpus(self) -> int:
        """GPUs this allocation holds."""
        return len(self.gpus)


class AllocationPolicy(abc.ABC):
    """Base class for allocation policies."""

    #: Short policy name used in logs, tables and the CLI.
    name: str = "abstract"

    @abc.abstractmethod
    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: "FrozenSet[int] | Sequence[int]",
    ) -> Optional[Allocation]:
        """Propose GPUs for ``request`` from ``available``, or ``None``.

        ``available`` is any collection of free GPU ids — the
        :class:`~repro.allocator.mapa.Mapa` engine passes the
        allocation state's cached sorted tuple; policies normalise
        (sort / set-convert) as they need.

        Policies that memoize scans may additionally accept a
        ``free_mask`` keyword — the caller's incrementally maintained
        free-set bitmask (see
        :attr:`repro.allocator.state.AllocationState.free_bitmask`),
        which must describe exactly ``available``.  The engine detects
        support by signature inspection, so policies with the plain
        three-argument form keep working unchanged.
        """

    def _feasible(self, request: AllocationRequest, available: FrozenSet[int]) -> bool:
        """Cheap necessary condition: enough free GPUs at all."""
        return request.num_gpus <= len(available)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
