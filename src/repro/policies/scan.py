"""Fast scored scan over candidate matches.

Greedy and Preserve both reduce to "maximise a score over all matches of
the pattern on the free GPUs".  MAPA's scores are functions of two
things only:

* the **induced census** of the matched vertex set — the paper defines a
  match ``M`` with ``E(P) ⊆ E(M)``, i.e. ``M`` is the induced subgraph
  over the chosen GPUs, and Eq. 2's (x, y, z) counts *its* links (that is
  also what the NCCL microbenchmark that trains the model exercises);
* the **mapped pattern edges** ``E(P) ∩ E(M)`` — what AggBW (Eq. 1) sums.

We therefore scan subset-by-subset against the topology's precomputed
:class:`~repro.topology.linktable.LinkTable`: the link class and
bandwidth of every GPU pair are resolved once per *topology* (not per
subset per allocation), remapped once per scan onto the available
vertices, and each subset then reduces to pure integer indexing — the
induced census falls out of the pair codes directly, and each orbit
permutation of the pattern is scored against the same flat arrays for
AggBW.  A worst-case DGX-V allocation (5-GPU ring, 8 free GPUs) costs a
few thousand lightweight iterations with no link resolution at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..appgraph.application import ApplicationGraph
from ..matching.candidates import orbit_permutations
from ..scoring.census import LinkCensus
from ..topology.hardware import HardwareGraph

Pair = Tuple[int, int]


@dataclass(frozen=True)
class ScoredMatch:
    """A candidate match with its cheap scores precomputed.

    ``census`` is the induced (x, y, z) census of the matched GPU set —
    the Eq. 2 input; ``match_census`` counts only the links the pattern's
    edges occupy; ``agg_bw`` is Eq. 1 over those same mapped edges.
    """

    subset: Tuple[int, ...]
    mapping: Tuple[int, ...]
    census: LinkCensus
    match_census: LinkCensus
    agg_bw: float


def _orbit_index_pairs(
    pattern: ApplicationGraph,
) -> List[Tuple[Pair, ...]]:
    """Per orbit permutation, the pattern edges as subset-index pairs."""
    out: List[Tuple[Pair, ...]] = []
    for perm in orbit_permutations(pattern):
        pairs = tuple(
            (perm[u], perm[v]) if perm[u] < perm[v] else (perm[v], perm[u])
            for u, v in pattern.edges
        )
        out.append(pairs)
    return out


def scan_scored_matches(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
) -> Iterator[ScoredMatch]:
    """Yield every distinct match with its censuses and AggBW."""
    verts = tuple(sorted(set(available)))
    k = pattern.num_gpus
    m = len(verts)
    if k > m:
        return
    orbits = orbit_permutations(pattern)
    # Pattern edges per orbit permutation as flat a*k+b subset indices.
    orbit_flat: List[Tuple[int, ...]] = [
        tuple(a * k + b for a, b in pairs) for pairs in _orbit_index_pairs(pattern)
    ]
    # Remap the topology-wide link table onto the available vertices once:
    # flat m*m upper-triangular arrays of link-class code and bandwidth.
    table = hardware.link_table
    rows = [table.index[g] for g in verts]
    n = table.n
    tcodes = table.codes
    tbw = table.bandwidths
    vcodes = [0] * (m * m)
    vbw = [0.0] * (m * m)
    for i in range(m):
        ri = rows[i] * n
        base = i * m
        for j in range(i + 1, m):
            p = ri + rows[j]
            vcodes[base + j] = tcodes[p]
            vbw[base + j] = tbw[p]
    scode = [0] * (k * k)
    sbw = [0.0] * (k * k)
    for local in combinations(range(m), k):
        subset = tuple(verts[i] for i in local)
        # Per-subset pair codes/bandwidths (flat a*k+b) plus the induced
        # census shared by every mapping on the subset.
        counts = [0, 0, 0]
        for a in range(k):
            base = local[a] * m
            arow = a * k
            for b in range(a + 1, k):
                p = base + local[b]
                c = vcodes[p]
                scode[arow + b] = c
                sbw[arow + b] = vbw[p]
                counts[c] += 1
        induced = LinkCensus(counts[0], counts[1], counts[2])
        for perm, pairs in zip(orbits, orbit_flat):
            mc = [0, 0, 0]
            agg = 0.0
            for q in pairs:
                mc[scode[q]] += 1
                agg += sbw[q]
            yield ScoredMatch(
                subset=subset,
                mapping=tuple(subset[perm[i]] for i in range(k)),
                census=induced,
                match_census=LinkCensus(mc[0], mc[1], mc[2]),
                agg_bw=agg,
            )


def best_scored_match(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
    key,
) -> Optional[ScoredMatch]:
    """The match maximising ``key(scored_match)``.

    Ties break towards the lexicographically smallest (subset, mapping),
    so policies are fully deterministic.
    """
    best: Optional[ScoredMatch] = None
    best_key = None
    for sm in scan_scored_matches(pattern, hardware, available):
        k = (key(sm), tuple(-g for g in sm.subset), tuple(-g for g in sm.mapping))
        if best is None or k > best_key:
            best = sm
            best_key = k
    return best


def best_subset_then_mapping(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
    subset_key,
) -> Optional[ScoredMatch]:
    """Maximise a *subset-level* score, then pick the best mapping on the
    winning subset by AggBW.

    Subset-level scores (induced-census EffBW, PreservedBW) are identical
    for every mapping on a subset; aligning the pattern's edges with the
    fastest links (max AggBW) is the natural deterministic tiebreak.
    """
    best: Optional[ScoredMatch] = None
    best_key = None
    for sm in scan_scored_matches(pattern, hardware, available):
        k = (
            subset_key(sm),
            sm.agg_bw,
            tuple(-g for g in sm.subset),
            tuple(-g for g in sm.mapping),
        )
        if best is None or k > best_key:
            best = sm
            best_key = k
    return best
