"""Fast scored scan over candidate matches.

Greedy and Preserve both reduce to "maximise a score over all matches of
the pattern on the free GPUs".  MAPA's scores are functions of two
things only:

* the **induced census** of the matched vertex set — the paper defines a
  match ``M`` with ``E(P) ⊆ E(M)``, i.e. ``M`` is the induced subgraph
  over the chosen GPUs, and Eq. 2's (x, y, z) counts *its* links (that is
  also what the NCCL microbenchmark that trains the model exercises);
* the **mapped pattern edges** ``E(P) ∩ E(M)`` — what AggBW (Eq. 1) sums.

Three engines implement the scan against the topology's precomputed
:class:`~repro.topology.linktable.LinkTable`:

* the **scalar engine** (:func:`scan_scored_matches` plus
  :func:`best_scored_match` / :func:`best_subset_then_mapping`) walks
  subsets and orbit permutations one at a time with pure integer
  indexing — the original implementation, kept as the reference oracle
  the property tests compare against;
* the **batch engine** (:class:`BatchScan` and the ``best_*`` batch
  selectors) builds the subset × orbit candidate space as dense numpy
  index matrices and scores *every* match of the pattern at once
  through :mod:`repro.scoring.batch` — censuses via one gather, AggBW
  via one sum, Eq. 2 via unique-census lookup.  Scores and the selected
  match are bit-identical to the scalar engine (see
  :mod:`repro.scoring.batch` for why), just several times faster;
* the **cached engine** (:class:`CachedScan`) puts a content-addressed
  memo in front of the batch engine: completed :class:`BatchScan`
  results — and the argmax winners selected from them — are stored in
  a :class:`~repro.scoring.memo.ScanCache` keyed by
  ``(topology_hash, pattern_id, free_set_bitmask)``, so a server that
  returns to a previously seen free set replays the stored result
  instead of rescanning.  Cached results *are* batch results (the miss
  path builds them with :func:`batch_scan` and the hit path returns
  them unchanged), so the engine stays bit-identical to both others.
  This is what the policies run in production (``engine="cached"``).

Candidate order is shared by both engines: subsets ascend
lexicographically over the sorted free GPUs, orbit permutations keep
their :func:`~repro.matching.candidates.orbit_permutations` order
within each subset, and every selector breaks score ties towards the
*earliest* candidate — so "first argmax" in the batch engine reproduces
the scalar tuple-comparison tie-breaks exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations
from typing import Callable, FrozenSet, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..appgraph.application import ApplicationGraph
from ..matching.candidates import orbit_permutations
from ..scoring import batch as batch_scoring
from ..scoring.census import LinkCensus
from ..scoring.memo import CacheEntry, ScanCache
from ..topology.hardware import HardwareGraph

Pair = Tuple[int, int]


@dataclass(frozen=True)
class ScoredMatch:
    """A candidate match with its cheap scores precomputed.

    ``census`` is the induced (x, y, z) census of the matched GPU set —
    the Eq. 2 input; ``match_census`` counts only the links the pattern's
    edges occupy; ``agg_bw`` is Eq. 1 over those same mapped edges.
    """

    subset: Tuple[int, ...]
    mapping: Tuple[int, ...]
    census: LinkCensus
    match_census: LinkCensus
    agg_bw: float


@lru_cache(maxsize=256)
def _orbit_index_pairs(
    pattern: ApplicationGraph,
) -> Tuple[Tuple[Pair, ...], ...]:
    """Per orbit permutation, the pattern edges as subset-index pairs.

    Memoized alongside :func:`~repro.matching.candidates.orbit_permutations`
    (patterns hash by structure): every scan of the same pattern reuses
    one table.
    """
    out: List[Tuple[Pair, ...]] = []
    for perm in orbit_permutations(pattern):
        pairs = tuple(
            (perm[u], perm[v]) if perm[u] < perm[v] else (perm[v], perm[u])
            for u, v in pattern.edges
        )
        out.append(pairs)
    return tuple(out)


@lru_cache(maxsize=512)
def _subset_matrix(m: int, k: int) -> np.ndarray:
    """All ``C(m, k)`` ascending index subsets as a read-only int matrix.

    A pure function of the two sizes, shared by every scan with ``m``
    free GPUs and a ``k``-slot pattern — the single most expensive
    constant of a cold scan at fleet scale (a 16-GPU server has 1820
    4-subsets).
    """
    subsets = np.array(
        list(combinations(range(m), k)), dtype=np.intp
    ).reshape(-1, k)
    subsets.flags.writeable = False
    return subsets


def scan_scored_matches(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
) -> Iterator[ScoredMatch]:
    """Yield every distinct match with its censuses and AggBW."""
    verts = tuple(sorted(set(available)))
    k = pattern.num_gpus
    m = len(verts)
    if k > m:
        return
    orbits = orbit_permutations(pattern)
    # Pattern edges per orbit permutation as flat a*k+b subset indices.
    orbit_flat: List[Tuple[int, ...]] = [
        tuple(a * k + b for a, b in pairs) for pairs in _orbit_index_pairs(pattern)
    ]
    # Remap the topology-wide link table onto the available vertices once:
    # flat m*m upper-triangular arrays of link-class code and bandwidth.
    table = hardware.link_table
    rows = [table.index[g] for g in verts]
    n = table.n
    tcodes = table.codes
    tbw = table.bandwidths
    vcodes = [0] * (m * m)
    vbw = [0.0] * (m * m)
    for i in range(m):
        ri = rows[i] * n
        base = i * m
        for j in range(i + 1, m):
            p = ri + rows[j]
            vcodes[base + j] = tcodes[p]
            vbw[base + j] = tbw[p]
    scode = [0] * (k * k)
    sbw = [0.0] * (k * k)
    for local in combinations(range(m), k):
        subset = tuple(verts[i] for i in local)
        # Per-subset pair codes/bandwidths (flat a*k+b) plus the induced
        # census shared by every mapping on the subset.
        counts = [0, 0, 0]
        for a in range(k):
            base = local[a] * m
            arow = a * k
            for b in range(a + 1, k):
                p = base + local[b]
                c = vcodes[p]
                scode[arow + b] = c
                sbw[arow + b] = vbw[p]
                counts[c] += 1
        induced = LinkCensus(counts[0], counts[1], counts[2])
        for perm, pairs in zip(orbits, orbit_flat):
            mc = [0, 0, 0]
            agg = 0.0
            for q in pairs:
                mc[scode[q]] += 1
                agg += sbw[q]
            yield ScoredMatch(
                subset=subset,
                mapping=tuple(subset[perm[i]] for i in range(k)),
                census=induced,
                match_census=LinkCensus(mc[0], mc[1], mc[2]),
                agg_bw=agg,
            )


def best_scored_match(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
    key,
) -> Optional[ScoredMatch]:
    """The match maximising ``key(scored_match)``.

    Ties break towards the lexicographically smallest (subset, mapping),
    so policies are fully deterministic.
    """
    best: Optional[ScoredMatch] = None
    best_key = None
    for sm in scan_scored_matches(pattern, hardware, available):
        k = (key(sm), tuple(-g for g in sm.subset), tuple(-g for g in sm.mapping))
        if best is None or k > best_key:
            best = sm
            best_key = k
    return best


# ---------------------------------------------------------------------- #
# the batch engine
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class BatchScan:
    """The whole candidate space of one scan, scored as dense arrays.

    One :class:`BatchScan` covers every distinct match of a pattern on
    the free GPUs: ``num_subsets`` candidate GPU subsets × ``num_orbits``
    orbit permutations of the pattern.  Match ``(s, o)`` corresponds to
    the scalar engine's ``s * num_orbits + o``-th yielded
    :class:`ScoredMatch`, and every array below is bit-identical to the
    scalar per-match values.

    Attributes
    ----------
    pattern:
        The application pattern being matched.
    verts:
        The free GPUs, sorted ascending (the subset universe).
    orbits:
        Orbit permutations of the pattern, in enumeration order.
    subsets_local:
        ``(S, k)`` int array of candidate subsets as indices into
        ``verts`` (rows ascend lexicographically).
    induced_census:
        ``(S, 3)`` int array — the induced (x, y, z) census of each
        subset, shared by all of its mappings (the Eq. 2 input).
    match_census:
        ``(S, O, 3)`` int array — the census of the links each match's
        pattern edges occupy (``E(P) ∩ E(M)``).
    agg_bw:
        ``(S, O)`` float array — Eq. 1 AggBW per match.
    subset_pair_bw:
        ``(S, P)`` float array of per-subset pairwise bandwidths
        (``P = k·(k-1)/2``), kept for the Eq. 3 inclusion–exclusion.
    free_bandwidth:
        ``(m, m)`` bandwidth matrix over ``verts`` (zero diagonal).
    """

    pattern: ApplicationGraph
    verts: Tuple[int, ...]
    orbits: Tuple[Tuple[int, ...], ...]
    subsets_local: np.ndarray
    induced_census: np.ndarray
    match_census: np.ndarray
    agg_bw: np.ndarray
    subset_pair_bw: np.ndarray
    free_bandwidth: np.ndarray

    @property
    def num_subsets(self) -> int:
        """Number of candidate GPU subsets (``C(m, k)``)."""
        return self.subsets_local.shape[0]

    @property
    def num_orbits(self) -> int:
        """Distinct orbit permutations of the pattern."""
        return len(self.orbits)

    @property
    def num_matches(self) -> int:
        """Total candidates scored: subsets × orbit permutations."""
        return self.num_subsets * self.num_orbits

    # ------------------------------------------------------------------ #
    def subset(self, s: int) -> Tuple[int, ...]:
        """GPU ids of candidate subset ``s`` (ascending)."""
        return tuple(self.verts[i] for i in self.subsets_local[s])

    def scored_match(self, s: int, o: int) -> ScoredMatch:
        """Materialise match ``(subset s, orbit o)`` as a :class:`ScoredMatch`.

        Only ever called for selected winners — the hot path stays in
        array land.
        """
        subset = self.subset(s)
        perm = self.orbits[o]
        ix, iy, iz = (int(v) for v in self.induced_census[s])
        mx, my, mz = (int(v) for v in self.match_census[s, o])
        return ScoredMatch(
            subset=subset,
            mapping=tuple(subset[perm[i]] for i in range(len(perm))),
            census=LinkCensus(ix, iy, iz),
            match_census=LinkCensus(mx, my, mz),
            agg_bw=float(self.agg_bw[s, o]),
        )

    # ------------------------------------------------------------------ #
    def subset_effective_bw(
        self, predict: Callable[[LinkCensus], float]
    ) -> np.ndarray:
        """Eq. 2 score of every subset's induced census, via ``predict``.

        ``predict`` is called once per *unique* census (so a policy's
        memo cache keeps working across events) and the results are
        broadcast back over the subsets via
        :func:`repro.scoring.batch.map_unique_censuses` — batch values
        are therefore bit-identical to scalar calls.
        """
        return batch_scoring.map_unique_censuses(
            self.induced_census,
            lambda x, y, z: predict(LinkCensus(x, y, z)),
        )

    def subset_preserved_bw(self) -> np.ndarray:
        """Eq. 3 score of every subset against the current free set."""
        return batch_scoring.batch_preserved_bw(
            self.free_bandwidth, self.subsets_local, self.subset_pair_bw
        )


def batch_scan(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
) -> Optional[BatchScan]:
    """Score every match of ``pattern`` on the free GPUs in one shot.

    Builds the subset × orbit candidate space as index matrices over
    the remapped link table and reduces them through
    :mod:`repro.scoring.batch`.  Returns ``None`` when the pattern
    cannot fit the available GPUs.
    """
    verts = tuple(sorted(set(available)))
    k = pattern.num_gpus
    m = len(verts)
    if k > m:
        return None
    table = hardware.link_table
    rows = table.rows_of(verts)
    grid = np.ix_(rows, rows)
    vcodes = table.codes_matrix[grid]
    vbw = table.bandwidth_matrix[grid]
    np.fill_diagonal(vbw, 0.0)
    subsets = _subset_matrix(m, k)
    a_idx, b_idx = batch_scoring.pair_slots(k)
    sub_a = subsets[:, a_idx]
    sub_b = subsets[:, b_idx]
    scodes = vcodes[sub_a, sub_b]  # (S, P)
    sbw = vbw[sub_a, sub_b]
    orbits = orbit_permutations(pattern)
    pos = batch_scoring.pair_slot_positions(k)
    orbit_edges = np.array(
        [[pos[a, b] for a, b in pairs] for pairs in _orbit_index_pairs(pattern)],
        dtype=np.intp,
    ).reshape(len(orbits), -1)
    mcodes = scodes[:, orbit_edges]  # (S, O, E)
    mbw = sbw[:, orbit_edges]
    return BatchScan(
        pattern=pattern,
        verts=verts,
        orbits=orbits,
        subsets_local=subsets,
        induced_census=batch_scoring.batch_census(scodes),
        match_census=batch_scoring.batch_census(mcodes),
        agg_bw=batch_scoring.batch_agg_bw(mbw),
        subset_pair_bw=sbw,
        free_bandwidth=vbw,
    )


# ---------------------------------------------------------------------- #
# the cached engine
# ---------------------------------------------------------------------- #
class CachedScan:
    """Content-addressed front-end over :func:`batch_scan`.

    The scanning policies (Greedy, Preserve, Oracle) consume this under
    ``engine="cached"``: :meth:`entry` resolves the request's
    ``(topology_hash, pattern_id, free_set_bitmask)`` key against a
    :class:`~repro.scoring.memo.ScanCache`, building the
    :class:`BatchScan` only on a miss, and the returned
    :class:`~repro.scoring.memo.CacheEntry` additionally memoizes each
    policy's argmax winner per objective token — a hit skips the scan
    *and* the selection pass.

    Invalidation is implicit: placement and release deltas flip bits in
    the server's free mask (see
    :attr:`repro.allocator.state.AllocationState.free_bitmask`), so a
    changed free set routes to a different key and cached winners are
    consulted only while their server's free set is genuinely
    unchanged — exactly the dirty-set protocol the allocator publishes.

    Parameters
    ----------
    cache:
        The backing store.  Pass a shared instance to pool scans across
        policies or across the servers of a fleet (sound because the
        key partitions by wiring and pattern, and winner tokens carry
        the objective and model identity); omit for a private cache.
    """

    def __init__(self, cache: Optional[ScanCache] = None) -> None:
        self.cache = cache if cache is not None else ScanCache()

    def entry(
        self,
        pattern: ApplicationGraph,
        hardware: HardwareGraph,
        available: FrozenSet[int] | Sequence[int],
        free_mask: Optional[int] = None,
    ) -> Optional[CacheEntry]:
        """The cached (or freshly built) scan for one request.

        ``free_mask`` is the caller's incrementally maintained free-set
        bitmask; when omitted it is derived from ``available``.  The
        caller must pass a mask consistent with ``available`` — the
        allocator threads :attr:`AllocationState.free_bitmask
        <repro.allocator.state.AllocationState.free_bitmask>` down,
        keeping key construction O(1).  Returns ``None`` when the
        pattern cannot fit the free set (never cached: the feasibility
        pre-check makes it rare).
        """
        if free_mask is None:
            free_mask = self.cache.free_mask(hardware, available)
        key = self.cache.key(hardware, pattern, free_mask)
        entry = self.cache.lookup(key)
        if entry is None:
            scan = batch_scan(pattern, hardware, available)
            if scan is None:
                return None
            entry = self.cache.insert(key, scan)
        elif entry.value is None:
            # Spill-rehydrated entry: it carries winners but not the
            # dense scan.  Install (or refresh) the lazy rebuild from
            # *this* request's inputs — the key pins the exact free
            # set, so the rebuild is bit-identical to the spilled scan
            # — and it fires only if a novel objective token asks.
            snapshot = tuple(available)
            entry.loader = lambda: batch_scan(pattern, hardware, snapshot)
        return entry


def best_match_by_agg(scan: BatchScan) -> ScoredMatch:
    """The match maximising AggBW (Greedy's objective), batch engine.

    ``np.argmax`` returns the *first* maximum in subset-major,
    orbit-minor order — exactly the scalar engine's tie-break towards
    the lexicographically smallest (subset, mapping).
    """
    flat = int(np.argmax(scan.agg_bw))
    s, o = divmod(flat, scan.num_orbits)
    return scan.scored_match(s, o)


def best_match_by_subset_score(
    scan: BatchScan, subset_scores: np.ndarray
) -> ScoredMatch:
    """Maximise a subset-level score, then AggBW, batch engine.

    The batch counterpart of :func:`best_subset_then_mapping`: among
    the subsets attaining the maximal ``subset_scores`` value, pick the
    match with the highest AggBW, ties towards the earliest candidate.
    Bit-identical scores make the grouping agree with the scalar
    engine's tuple comparisons.
    """
    cand = np.flatnonzero(subset_scores == subset_scores.max())
    sub_agg = scan.agg_bw[cand]  # (C, O)
    flat = int(np.argmax(sub_agg))
    ci, o = divmod(flat, scan.num_orbits)
    return scan.scored_match(int(cand[ci]), o)


def best_match_by_preserved(scan: BatchScan) -> Tuple[ScoredMatch, float]:
    """The Eq. 3 selection of the insensitive branch, batch engine.

    Deliberately *not* :func:`best_match_by_subset_score`: the scalar
    insensitive branch picks the **first** subset attaining the maximal
    PreservedBW and only then tie-breaks mappings by AggBW *within that
    subset* — AggBW never arbitrates between equally-preserving
    subsets.  Both Preserve and Oracle share this selector so the
    subtle tie-break lives in exactly one place.

    Returns
    -------
    tuple
        The selected :class:`ScoredMatch` and its PreservedBW score.
    """
    preserved = scan.subset_preserved_bw()
    s = int(np.argmax(preserved))
    o = int(np.argmax(scan.agg_bw[s]))
    return scan.scored_match(s, o), float(preserved[s])


# ---------------------------------------------------------------------- #
# scalar subset-level selector (reference oracle, like best_scored_match)
# ---------------------------------------------------------------------- #
def best_subset_then_mapping(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
    subset_key,
) -> Optional[ScoredMatch]:
    """Maximise a *subset-level* score, then pick the best mapping on the
    winning subset by AggBW.

    Subset-level scores (induced-census EffBW, PreservedBW) are identical
    for every mapping on a subset; aligning the pattern's edges with the
    fastest links (max AggBW) is the natural deterministic tiebreak.
    """
    best: Optional[ScoredMatch] = None
    best_key = None
    for sm in scan_scored_matches(pattern, hardware, available):
        k = (
            subset_key(sm),
            sm.agg_bw,
            tuple(-g for g in sm.subset),
            tuple(-g for g in sm.mapping),
        )
        if best is None or k > best_key:
            best = sm
            best_key = k
    return best
