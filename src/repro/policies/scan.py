"""Fast scored scan over candidate matches.

Greedy and Preserve both reduce to "maximise a score over all matches of
the pattern on the free GPUs".  MAPA's scores are functions of two
things only:

* the **induced census** of the matched vertex set — the paper defines a
  match ``M`` with ``E(P) ⊆ E(M)``, i.e. ``M`` is the induced subgraph
  over the chosen GPUs, and Eq. 2's (x, y, z) counts *its* links (that is
  also what the NCCL microbenchmark that trains the model exercises);
* the **mapped pattern edges** ``E(P) ∩ E(M)`` — what AggBW (Eq. 1) sums.

We therefore scan subset-by-subset: the pairwise link table of a subset
is built once, the induced census falls out of it directly, and each
orbit permutation of the pattern is scored against the table for AggBW.
A worst-case DGX-V allocation (5-GPU ring, 8 free GPUs) costs a few
thousand lightweight iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..appgraph.application import ApplicationGraph
from ..matching.candidates import orbit_permutations
from ..scoring.census import LinkCensus
from ..topology.hardware import HardwareGraph
from ..topology.links import bandwidth_of, classify_xyz

Pair = Tuple[int, int]


@dataclass(frozen=True)
class ScoredMatch:
    """A candidate match with its cheap scores precomputed.

    ``census`` is the induced (x, y, z) census of the matched GPU set —
    the Eq. 2 input; ``match_census`` counts only the links the pattern's
    edges occupy; ``agg_bw`` is Eq. 1 over those same mapped edges.
    """

    subset: Tuple[int, ...]
    mapping: Tuple[int, ...]
    census: LinkCensus
    match_census: LinkCensus
    agg_bw: float


def _orbit_index_pairs(
    pattern: ApplicationGraph,
) -> List[Tuple[Pair, ...]]:
    """Per orbit permutation, the pattern edges as subset-index pairs."""
    out: List[Tuple[Pair, ...]] = []
    for perm in orbit_permutations(pattern):
        pairs = tuple(
            (perm[u], perm[v]) if perm[u] < perm[v] else (perm[v], perm[u])
            for u, v in pattern.edges
        )
        out.append(pairs)
    return out


def scan_scored_matches(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
) -> Iterator[ScoredMatch]:
    """Yield every distinct match with its censuses and AggBW."""
    verts = tuple(sorted(set(available)))
    k = pattern.num_gpus
    if k > len(verts):
        return
    orbit_pairs = _orbit_index_pairs(pattern)
    orbits = orbit_permutations(pattern)
    link = hardware.link  # local binding for speed
    for subset in combinations(verts, k):
        # Pairwise link class / bandwidth table for this subset, plus the
        # induced census shared by every mapping on it.
        cls: Dict[Pair, str] = {}
        bw: Dict[Pair, float] = {}
        ix = iy = iz = 0
        for i in range(k):
            for j in range(i + 1, k):
                l = link(subset[i], subset[j])
                c = classify_xyz(l)
                cls[(i, j)] = c
                bw[(i, j)] = bandwidth_of(l)
                if c == "x":
                    ix += 1
                elif c == "y":
                    iy += 1
                else:
                    iz += 1
        induced = LinkCensus(ix, iy, iz)
        for perm, pairs in zip(orbits, orbit_pairs):
            x = y = z = 0
            agg = 0.0
            for p in pairs:
                c = cls[p]
                agg += bw[p]
                if c == "x":
                    x += 1
                elif c == "y":
                    y += 1
                else:
                    z += 1
            yield ScoredMatch(
                subset=subset,
                mapping=tuple(subset[perm[i]] for i in range(k)),
                census=induced,
                match_census=LinkCensus(x, y, z),
                agg_bw=agg,
            )


def best_scored_match(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
    key,
) -> Optional[ScoredMatch]:
    """The match maximising ``key(scored_match)``.

    Ties break towards the lexicographically smallest (subset, mapping),
    so policies are fully deterministic.
    """
    best: Optional[ScoredMatch] = None
    best_key = None
    for sm in scan_scored_matches(pattern, hardware, available):
        k = (key(sm), tuple(-g for g in sm.subset), tuple(-g for g in sm.mapping))
        if best is None or k > best_key:
            best = sm
            best_key = k
    return best


def best_subset_then_mapping(
    pattern: ApplicationGraph,
    hardware: HardwareGraph,
    available: FrozenSet[int] | Sequence[int],
    subset_key,
) -> Optional[ScoredMatch]:
    """Maximise a *subset-level* score, then pick the best mapping on the
    winning subset by AggBW.

    Subset-level scores (induced-census EffBW, PreservedBW) are identical
    for every mapping on a subset; aligning the pattern's edges with the
    fastest links (max AggBW) is the natural deterministic tiebreak.
    """
    best: Optional[ScoredMatch] = None
    best_key = None
    for sm in scan_scored_matches(pattern, hardware, available):
        k = (
            subset_key(sm),
            sm.agg_bw,
            tuple(-g for g in sm.subset),
            tuple(-g for g in sm.mapping),
        )
        if best is None or k > best_key:
            best = sm
            best_key = k
    return best
