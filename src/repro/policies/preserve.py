"""MAPA Preserve policy (paper Algorithm 1).

The headline policy.  For a bandwidth-*sensitive* job, select the match
with the highest *predicted effective bandwidth* (Eq. 2).  For a
bandwidth-*insensitive* job, select the match that leaves the most
aggregate bandwidth available to future jobs (*Preserved Bandwidth*,
Eq. 3) — deliberately steering insensitive jobs onto the poorly-connected
corners of the machine so the fast links stay whole for jobs that need
them.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Optional, Tuple

from ..matching.candidates import match_from_mapping
from ..scoring.census import LinkCensus
from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..scoring.memo import ScanCache
from ..scoring.preserved import remaining_bandwidth
from ..topology.hardware import HardwareGraph
from .base import Allocation, AllocationPolicy, AllocationRequest
from .greedy import SCAN_ENGINES
from .scan import (
    BatchScan,
    CachedScan,
    batch_scan,
    best_match_by_preserved,
    best_match_by_subset_score,
    best_subset_then_mapping,
)


class PreservePolicy(AllocationPolicy):
    """Algorithm 1: EffBW for sensitive jobs, PreservedBW for insensitive.

    Parameters
    ----------
    model:
        The Eq. 2 effective-bandwidth model used to score matches for
        sensitive jobs.  Defaults to the paper's published coefficients;
        simulations typically pass a model refit against the simulated
        microbenchmark (see :func:`repro.scoring.regression.fit_for_hardware`).
    engine:
        ``"cached"`` (default) serves repeated (wiring, pattern,
        free-set) scans and their Algorithm-1 winners from a
        content-addressed :class:`~repro.scoring.memo.ScanCache` —
        winner memo tokens carry the model's coefficient vector, so a
        cache shared across differently fitted policies stays sound;
        ``"batch"`` rescans as dense arrays each call; ``"scalar"`` is
        the original per-match walk, kept as the bit-identical
        reference oracle.  All engines share the per-census prediction
        cache.
    cache:
        Backing :class:`~repro.scoring.memo.ScanCache` for the cached
        engine (fleet-shared when the multi-server scheduler passes one
        in); private when omitted.  Ignored by the other engines.
    """

    name = "preserve"

    def __init__(
        self,
        model: EffectiveBandwidthModel = PAPER_MODEL,
        engine: str = "cached",
        cache: Optional[ScanCache] = None,
    ) -> None:
        if engine not in SCAN_ENGINES:
            raise ValueError(f"unknown scan engine {engine!r}")
        self.model = model
        self.engine = engine
        self._predict_cache: Dict[Tuple[int, int, int], float] = {}
        self.scan_cache: Optional[ScanCache] = None
        self._cached: Optional[CachedScan] = None
        if engine == "cached":
            self._cached = CachedScan(cache)
            self.scan_cache = self._cached.cache

    def _predict(self, census: LinkCensus) -> float:
        """Memoised Eq. 2 prediction for one (x, y, z) census."""
        key = census.as_tuple()
        cached = self._predict_cache.get(key)
        if cached is None:
            cached = self.model.predict_census(census)
            self._predict_cache[key] = cached
        return cached

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
        free_mask: Optional[int] = None,
    ) -> Optional[Allocation]:
        """Propose the Algorithm-1 match for ``request``, or ``None``."""
        if not self._feasible(request, available):
            return None
        if request.bandwidth_sensitive:
            return self._allocate_sensitive(
                request, hardware, available, free_mask
            )
        return self._allocate_insensitive(
            request, hardware, available, free_mask
        )

    # ------------------------------------------------------------------ #
    def _sensitive_proposal(self, scan: BatchScan) -> Allocation:
        """The Eq. 2 winning proposal of one scan (memoized per entry)."""
        best = best_match_by_subset_score(
            scan, scan.subset_effective_bw(self._predict)
        )
        match = match_from_mapping(scan.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={
                "effective_bw": self._predict(best.census),
                "agg_bw": best.agg_bw,
            },
        )

    def _insensitive_proposal(self, scan: BatchScan) -> Allocation:
        """The Eq. 3 winning proposal of one scan (memoized per entry)."""
        best, best_score = best_match_by_preserved(scan)
        match = match_from_mapping(scan.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={
                "preserved_bw": best_score,
                "effective_bw": self._predict(best.census),
                "agg_bw": best.agg_bw,
            },
        )

    def _allocate_sensitive(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
        free_mask: Optional[int] = None,
    ) -> Optional[Allocation]:
        """Maximise the predicted EffBW of the induced census (Eq. 2)."""
        if self.engine == "cached":
            entry = self._cached.entry(
                request.pattern, hardware, available, free_mask
            )
            if entry is None:
                return None
            return entry.winner(
                ("effbw", self.model.coefficients), self._sensitive_proposal
            )
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            if scan is None:
                return None
            best = best_match_by_subset_score(
                scan, scan.subset_effective_bw(self._predict)
            )
        else:
            best = best_subset_then_mapping(
                request.pattern,
                hardware,
                available,
                subset_key=lambda sm: self._predict(sm.census),
            )
        if best is None:
            return None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={
                "effective_bw": self._predict(best.census),
                "agg_bw": best.agg_bw,
            },
        )

    def _allocate_insensitive(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
        free_mask: Optional[int] = None,
    ) -> Optional[Allocation]:
        """Maximise the bandwidth preserved for future jobs (Eq. 3)."""
        if self.engine == "cached":
            entry = self._cached.entry(
                request.pattern, hardware, available, free_mask
            )
            if entry is None:
                return None
            return entry.winner(
                ("preserved", self.model.coefficients),
                self._insensitive_proposal,
            )
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            if scan is None:
                return None
            best, best_score = best_match_by_preserved(scan)
        else:
            # Preserved bandwidth depends only on the chosen vertex set,
            # so the subset scan skips mapping enumeration entirely.
            free = set(available)
            k = request.num_gpus
            best_subset: Optional[Tuple[int, ...]] = None
            best_score = float("-inf")
            for subset in combinations(sorted(free), k):
                score = remaining_bandwidth(hardware, free - set(subset))
                if score > best_score:
                    best_score = score
                    best_subset = subset
            if best_subset is None:
                return None
            # Any mapping on the chosen subset preserves the same
            # bandwidth; break the tie in the job's favour by aligning
            # its pattern edges with the fastest links it got.
            best = best_subset_then_mapping(
                request.pattern,
                hardware,
                frozenset(best_subset),
                subset_key=lambda sm: self._predict(sm.census),
            )
            assert best is not None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={
                "preserved_bw": best_score,
                "effective_bw": self._predict(best.census),
                "agg_bw": best.agg_bw,
            },
        )
