"""Baseline policy: lowest free GPU ids.

This is how stock container runtimes assign GPUs (the paper's section 4:
"the Baseline policy simply allocates GPU by ID by selecting the lowest
IDs", as Nvidia Docker does).  It is completely blind to both the
application's communication pattern and the hardware topology, which is
what produces the fragmentation of Fig. 4.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..matching.candidates import match_from_mapping
from ..topology.hardware import HardwareGraph
from .base import Allocation, AllocationPolicy, AllocationRequest


class BaselinePolicy(AllocationPolicy):
    """Allocate the ``k`` lowest-numbered free GPUs."""

    name = "baseline"

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        """Propose the ``k`` lowest-numbered free GPUs, or ``None``."""
        if not self._feasible(request, available):
            return None
        chosen = tuple(sorted(available)[: request.num_gpus])
        # Pattern slots map onto the chosen GPUs in id order; the baseline
        # has no notion of a better arrangement.
        match = match_from_mapping(request.pattern, chosen)
        return Allocation(gpus=chosen, match=match)
