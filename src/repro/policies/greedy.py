"""MAPA Greedy policy: maximise Aggregated Bandwidth (paper section 4).

The first of the two MAPA pattern-selection policies: among all matches
of the application pattern on the free GPUs, pick the one with the most
total allocated bandwidth (Eq. 1).  The paper shows this already beats
Baseline and Topo-aware by a wide margin (it is application- and
hardware-topology aware) but, because AggBW does not track effective
bandwidth, it can starve later bandwidth-sensitive jobs — the motivation
for Preserve.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..matching.candidates import match_from_mapping
from ..scoring.memo import ScanCache
from ..topology.hardware import HardwareGraph
from .base import Allocation, AllocationPolicy, AllocationRequest
from .scan import (
    BatchScan,
    CachedScan,
    batch_scan,
    best_match_by_agg,
    best_scored_match,
)

#: The scan engines a scanning policy accepts.
SCAN_ENGINES = ("cached", "batch", "scalar")


class GreedyPolicy(AllocationPolicy):
    """Pick the match with the highest Aggregated Bandwidth.

    Parameters
    ----------
    engine:
        ``"cached"`` (default) serves repeated (wiring, pattern,
        free-set) scans — and their AggBW winners — from a
        content-addressed :class:`~repro.scoring.memo.ScanCache`;
        ``"batch"`` scores every candidate match at once through the
        vectorized engine on each call; ``"scalar"`` walks matches one
        at a time — the bit-identical reference oracle the property
        tests compare against.  All three select identical allocations.
    cache:
        Backing :class:`~repro.scoring.memo.ScanCache` for the cached
        engine (shared across a fleet's policies by the multi-server
        scheduler); a private cache is created when omitted.  Ignored
        by the other engines.
    """

    name = "greedy"

    def __init__(
        self, engine: str = "cached", cache: Optional[ScanCache] = None
    ) -> None:
        if engine not in SCAN_ENGINES:
            raise ValueError(f"unknown scan engine {engine!r}")
        self.engine = engine
        self.scan_cache: Optional[ScanCache] = None
        self._cached: Optional[CachedScan] = None
        if engine == "cached":
            self._cached = CachedScan(cache)
            self.scan_cache = self._cached.cache

    @staticmethod
    def _proposal(scan: BatchScan) -> Allocation:
        """The AggBW-winning proposal of one scan (memoized per entry)."""
        best = best_match_by_agg(scan)
        match = match_from_mapping(scan.pattern, best.mapping)
        return Allocation(
            gpus=best.subset, match=match, scores={"agg_bw": best.agg_bw}
        )

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
        free_mask: Optional[int] = None,
    ) -> Optional[Allocation]:
        """Propose the AggBW-maximal match on the free GPUs, or ``None``."""
        if not self._feasible(request, available):
            return None
        if self.engine == "cached":
            entry = self._cached.entry(
                request.pattern, hardware, available, free_mask
            )
            if entry is None:
                return None
            return entry.winner(("agg",), self._proposal)
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            best = None if scan is None else best_match_by_agg(scan)
        else:
            best = best_scored_match(
                request.pattern, hardware, available, key=lambda sm: sm.agg_bw
            )
        if best is None:
            return None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={"agg_bw": best.agg_bw},
        )
