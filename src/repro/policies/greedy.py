"""MAPA Greedy policy: maximise Aggregated Bandwidth (paper section 4).

The first of the two MAPA pattern-selection policies: among all matches
of the application pattern on the free GPUs, pick the one with the most
total allocated bandwidth (Eq. 1).  The paper shows this already beats
Baseline and Topo-aware by a wide margin (it is application- and
hardware-topology aware) but, because AggBW does not track effective
bandwidth, it can starve later bandwidth-sensitive jobs — the motivation
for Preserve.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..matching.candidates import match_from_mapping
from ..topology.hardware import HardwareGraph
from .base import Allocation, AllocationPolicy, AllocationRequest
from .scan import batch_scan, best_match_by_agg, best_scored_match


class GreedyPolicy(AllocationPolicy):
    """Pick the match with the highest Aggregated Bandwidth.

    Parameters
    ----------
    engine:
        ``"batch"`` (default) scores every candidate match at once
        through the vectorized engine; ``"scalar"`` walks matches one
        at a time — kept as the bit-identical reference oracle the
        property tests compare against.
    """

    name = "greedy"

    def __init__(self, engine: str = "batch") -> None:
        if engine not in ("batch", "scalar"):
            raise ValueError(f"unknown scan engine {engine!r}")
        self.engine = engine

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        """Propose the AggBW-maximal match on the free GPUs, or ``None``."""
        if not self._feasible(request, available):
            return None
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            best = None if scan is None else best_match_by_agg(scan)
        else:
            best = best_scored_match(
                request.pattern, hardware, available, key=lambda sm: sm.agg_bw
            )
        if best is None:
            return None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={"agg_bw": best.agg_bw},
        )
