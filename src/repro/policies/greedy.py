"""MAPA Greedy policy: maximise Aggregated Bandwidth (paper section 4).

The first of the two MAPA pattern-selection policies: among all matches
of the application pattern on the free GPUs, pick the one with the most
total allocated bandwidth (Eq. 1).  The paper shows this already beats
Baseline and Topo-aware by a wide margin (it is application- and
hardware-topology aware) but, because AggBW does not track effective
bandwidth, it can starve later bandwidth-sensitive jobs — the motivation
for Preserve.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..matching.candidates import match_from_mapping
from ..topology.hardware import HardwareGraph
from .base import Allocation, AllocationPolicy, AllocationRequest
from .scan import best_scored_match


class GreedyPolicy(AllocationPolicy):
    """Pick the match with the highest Aggregated Bandwidth."""

    name = "greedy"

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        if not self._feasible(request, available):
            return None
        best = best_scored_match(
            request.pattern, hardware, available, key=lambda sm: sm.agg_bw
        )
        if best is None:
            return None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={"agg_bw": best.agg_bw},
        )
