"""Oracle policy: score candidate subsets with the *measured* bandwidth.

An upper bound for ablations: where Preserve ranks matches with the
Eq. 2 prediction, the oracle runs the (simulated) NCCL microbenchmark on
every candidate subset.  The gap between Preserve and the oracle is the
cost of Eq. 2's modelling error — impossible to deploy on real hardware
(the paper's whole point is that measuring EffBW at scheduling time is
infeasible), but free in simulation.
"""

from __future__ import annotations

import numpy as np

from itertools import combinations
from typing import Dict, FrozenSet, Optional, Tuple

from ..comm.microbench import peak_effective_bandwidth
from ..matching.candidates import match_from_mapping
from ..scoring.memo import ScanCache
from ..scoring.preserved import remaining_bandwidth
from ..topology.hardware import HardwareGraph
from .base import Allocation, AllocationPolicy, AllocationRequest
from .greedy import SCAN_ENGINES
from .scan import (
    BatchScan,
    CachedScan,
    batch_scan,
    best_match_by_preserved,
    best_match_by_subset_score,
    best_subset_then_mapping,
)


class OraclePolicy(AllocationPolicy):
    """Algorithm 1 with measured effective bandwidth instead of Eq. 2.

    Parameters
    ----------
    engine:
        ``"cached"`` (default) memoizes completed scans and the
        measured-bandwidth winners under the content-addressed scan key
        (the microbenchmark is a pure function of the wiring and the
        subset, so cached winners replay it exactly); ``"batch"``
        enumerates and tie-breaks candidates through the vectorized
        scan each call (the microbenchmark itself stays scalar,
        memoised per subset); ``"scalar"`` is the original reference
        walk.
    cache:
        Backing :class:`~repro.scoring.memo.ScanCache` for the cached
        engine; private when omitted.  Ignored by the other engines.
    """

    name = "oracle"

    def __init__(
        self, engine: str = "cached", cache: Optional[ScanCache] = None
    ) -> None:
        if engine not in SCAN_ENGINES:
            raise ValueError(f"unknown scan engine {engine!r}")
        self.engine = engine
        self._cache: Dict[Tuple[HardwareGraph, Tuple[int, ...]], float] = {}
        self.scan_cache: Optional[ScanCache] = None
        self._cached: Optional[CachedScan] = None
        if engine == "cached":
            self._cached = CachedScan(cache)
            self.scan_cache = self._cached.cache

    def _measure(self, hardware: HardwareGraph, subset: Tuple[int, ...]) -> float:
        """Memoised simulated-NCCL bandwidth of one GPU subset."""
        key = (hardware, subset)
        bw = self._cache.get(key)
        if bw is None:
            bw = peak_effective_bandwidth(hardware, subset)
            self._cache[key] = bw
        return bw

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
        free_mask: Optional[int] = None,
    ) -> Optional[Allocation]:
        """Propose the measured-EffBW-optimal match, or ``None``."""
        if not self._feasible(request, available):
            return None
        if request.bandwidth_sensitive:
            return self._allocate_sensitive(
                request, hardware, available, free_mask
            )
        return self._allocate_insensitive(
            request, hardware, available, free_mask
        )

    # ------------------------------------------------------------------ #
    def _measured_scores(self, scan: BatchScan, hardware: HardwareGraph) -> np.ndarray:
        """Measured bandwidth of every candidate subset of one scan."""
        return np.array(
            [
                self._measure(hardware, scan.subset(s))
                for s in range(scan.num_subsets)
            ],
            dtype=np.float64,
        )

    def _sensitive_proposal(
        self, scan: BatchScan, hardware: HardwareGraph
    ) -> Allocation:
        """The measured-bandwidth winner of one scan (memoized per entry)."""
        best = best_match_by_subset_score(
            scan, self._measured_scores(scan, hardware)
        )
        match = match_from_mapping(scan.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={
                "measured_bw": self._measure(hardware, best.subset),
                "agg_bw": best.agg_bw,
            },
        )

    @staticmethod
    def _insensitive_proposal(scan: BatchScan) -> Allocation:
        """The Eq. 3 winner of one scan (memoized per entry)."""
        best, best_score = best_match_by_preserved(scan)
        match = match_from_mapping(scan.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={"preserved_bw": best_score, "agg_bw": best.agg_bw},
        )

    def _allocate_sensitive(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
        free_mask: Optional[int] = None,
    ) -> Optional[Allocation]:
        """Maximise the *measured* bandwidth over candidate subsets."""
        if self.engine == "cached":
            entry = self._cached.entry(
                request.pattern, hardware, available, free_mask
            )
            if entry is None:
                return None
            return entry.winner(
                ("oracle-measured",),
                lambda scan: self._sensitive_proposal(scan, hardware),
            )
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            if scan is None:
                return None
            best = best_match_by_subset_score(
                scan, self._measured_scores(scan, hardware)
            )
        else:
            best = best_subset_then_mapping(
                request.pattern,
                hardware,
                available,
                subset_key=lambda sm: self._measure(hardware, sm.subset),
            )
        if best is None:
            return None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={
                "measured_bw": self._measure(hardware, best.subset),
                "agg_bw": best.agg_bw,
            },
        )

    def _allocate_insensitive(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
        free_mask: Optional[int] = None,
    ) -> Optional[Allocation]:
        """Insensitive branch identical to Preserve (Eq. 3 is exact anyway)."""
        if self.engine == "cached":
            entry = self._cached.entry(
                request.pattern, hardware, available, free_mask
            )
            if entry is None:
                return None
            return entry.winner(("oracle-preserved",), self._insensitive_proposal)
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            if scan is None:
                return None
            best, best_score = best_match_by_preserved(scan)
        else:
            free = set(available)
            k = request.num_gpus
            best_subset: Optional[Tuple[int, ...]] = None
            best_score = float("-inf")
            for subset in combinations(sorted(free), k):
                score = remaining_bandwidth(hardware, free - set(subset))
                if score > best_score:
                    best_score = score
                    best_subset = subset
            if best_subset is None:
                return None
            best = best_subset_then_mapping(
                request.pattern,
                hardware,
                frozenset(best_subset),
                subset_key=lambda sm: self._measure(hardware, sm.subset),
            )
            assert best is not None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={"preserved_bw": best_score, "agg_bw": best.agg_bw},
        )
