"""Oracle policy: score candidate subsets with the *measured* bandwidth.

An upper bound for ablations: where Preserve ranks matches with the
Eq. 2 prediction, the oracle runs the (simulated) NCCL microbenchmark on
every candidate subset.  The gap between Preserve and the oracle is the
cost of Eq. 2's modelling error — impossible to deploy on real hardware
(the paper's whole point is that measuring EffBW at scheduling time is
infeasible), but free in simulation.
"""

from __future__ import annotations

import numpy as np

from itertools import combinations
from typing import Dict, FrozenSet, Optional, Tuple

from ..comm.microbench import peak_effective_bandwidth
from ..matching.candidates import match_from_mapping
from ..scoring.preserved import remaining_bandwidth
from ..topology.hardware import HardwareGraph
from .base import Allocation, AllocationPolicy, AllocationRequest
from .scan import (
    batch_scan,
    best_match_by_preserved,
    best_match_by_subset_score,
    best_subset_then_mapping,
)


class OraclePolicy(AllocationPolicy):
    """Algorithm 1 with measured effective bandwidth instead of Eq. 2.

    Parameters
    ----------
    engine:
        ``"batch"`` (default) enumerates and tie-breaks candidates
        through the vectorized scan (the microbenchmark itself stays
        scalar, memoised per subset); ``"scalar"`` is the original
        reference walk.
    """

    name = "oracle"

    def __init__(self, engine: str = "batch") -> None:
        if engine not in ("batch", "scalar"):
            raise ValueError(f"unknown scan engine {engine!r}")
        self.engine = engine
        self._cache: Dict[Tuple[HardwareGraph, Tuple[int, ...]], float] = {}

    def _measure(self, hardware: HardwareGraph, subset: Tuple[int, ...]) -> float:
        """Memoised simulated-NCCL bandwidth of one GPU subset."""
        key = (hardware, subset)
        bw = self._cache.get(key)
        if bw is None:
            bw = peak_effective_bandwidth(hardware, subset)
            self._cache[key] = bw
        return bw

    def allocate(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        """Propose the measured-EffBW-optimal match, or ``None``."""
        if not self._feasible(request, available):
            return None
        if request.bandwidth_sensitive:
            return self._allocate_sensitive(request, hardware, available)
        return self._allocate_insensitive(request, hardware, available)

    # ------------------------------------------------------------------ #
    def _allocate_sensitive(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        """Maximise the *measured* bandwidth over candidate subsets."""
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            if scan is None:
                return None
            measured = np.array(
                [
                    self._measure(hardware, scan.subset(s))
                    for s in range(scan.num_subsets)
                ],
                dtype=np.float64,
            )
            best = best_match_by_subset_score(scan, measured)
        else:
            best = best_subset_then_mapping(
                request.pattern,
                hardware,
                available,
                subset_key=lambda sm: self._measure(hardware, sm.subset),
            )
        if best is None:
            return None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={
                "measured_bw": self._measure(hardware, best.subset),
                "agg_bw": best.agg_bw,
            },
        )

    def _allocate_insensitive(
        self,
        request: AllocationRequest,
        hardware: HardwareGraph,
        available: FrozenSet[int],
    ) -> Optional[Allocation]:
        """Insensitive branch identical to Preserve (Eq. 3 is exact anyway)."""
        if self.engine == "batch":
            scan = batch_scan(request.pattern, hardware, available)
            if scan is None:
                return None
            best, best_score = best_match_by_preserved(scan)
        else:
            free = set(available)
            k = request.num_gpus
            best_subset: Optional[Tuple[int, ...]] = None
            best_score = float("-inf")
            for subset in combinations(sorted(free), k):
                score = remaining_bandwidth(hardware, free - set(subset))
                if score > best_score:
                    best_score = score
                    best_subset = subset
            if best_subset is None:
                return None
            best = best_subset_then_mapping(
                request.pattern,
                hardware,
                frozenset(best_subset),
                subset_key=lambda sm: self._measure(hardware, sm.subset),
            )
            assert best is not None
        match = match_from_mapping(request.pattern, best.mapping)
        return Allocation(
            gpus=best.subset,
            match=match,
            scores={"preserved_bw": best_score, "agg_bw": best.agg_bw},
        )
