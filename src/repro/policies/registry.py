"""Policy registry: the four policies of the paper's evaluation, by name."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..scoring.effective import EffectiveBandwidthModel
from ..scoring.memo import ScanCache
from .base import AllocationPolicy
from .baseline import BaselinePolicy
from .greedy import GreedyPolicy
from .preserve import PreservePolicy
from .topo_aware import TopoAwarePolicy

#: Evaluation order used throughout the paper's figures.
POLICY_NAMES: List[str] = ["baseline", "topo-aware", "greedy", "preserve"]


def make_policy(
    name: str,
    model: Optional[EffectiveBandwidthModel] = None,
    engine: str = "cached",
    cache: Optional[ScanCache] = None,
) -> AllocationPolicy:
    """Instantiate a policy by name.

    Parameters
    ----------
    name:
        One of :data:`POLICY_NAMES` or ``"oracle"`` (case-insensitive;
        a few spelling aliases are accepted).
    model:
        Configures the Preserve policy's Eq. 2 predictor; ignored by
        the others.
    engine:
        Match-scan engine for the scanning policies (Greedy, Preserve,
        Oracle): ``"cached"`` (content-addressed scan memoization over
        the batch engine, the default), ``"batch"`` (vectorized,
        rescans every call) or ``"scalar"`` (the bit-identical
        reference path).  Ignored by Baseline and Topo-aware, which
        never scan.
    cache:
        A shared :class:`~repro.scoring.memo.ScanCache` for the cached
        engine — the multi-server scheduler pools one across a fleet's
        policies, and the sweep runner reuses one per worker process.
        Omitted → each scanning policy gets its own.  Ignored unless
        ``engine="cached"``.
    """
    key = name.lower()
    if key == "baseline":
        return BaselinePolicy()
    if key in ("topo-aware", "topo_aware", "topoaware"):
        return TopoAwarePolicy()
    if key == "greedy":
        return GreedyPolicy(engine=engine, cache=cache)
    if key in ("preserve", "preservation"):
        if model is not None:
            return PreservePolicy(model, engine=engine, cache=cache)
        return PreservePolicy(engine=engine, cache=cache)
    if key == "oracle":
        from .oracle import OraclePolicy

        return OraclePolicy(engine=engine, cache=cache)
    known = ", ".join(POLICY_NAMES + ["oracle"])
    raise KeyError(f"unknown policy {name!r}; known: {known}")


def all_policies(
    model: Optional[EffectiveBandwidthModel] = None,
    engine: str = "cached",
    cache: Optional[ScanCache] = None,
) -> Dict[str, AllocationPolicy]:
    """All four evaluation policies keyed by name."""
    return {
        name: make_policy(name, model, engine=engine, cache=cache)
        for name in POLICY_NAMES
    }
