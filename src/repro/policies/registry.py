"""Policy registry: the four policies of the paper's evaluation, by name."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..scoring.effective import EffectiveBandwidthModel
from .base import AllocationPolicy
from .baseline import BaselinePolicy
from .greedy import GreedyPolicy
from .preserve import PreservePolicy
from .topo_aware import TopoAwarePolicy

#: Evaluation order used throughout the paper's figures.
POLICY_NAMES: List[str] = ["baseline", "topo-aware", "greedy", "preserve"]


def make_policy(
    name: str,
    model: Optional[EffectiveBandwidthModel] = None,
    engine: str = "batch",
) -> AllocationPolicy:
    """Instantiate a policy by name.

    Parameters
    ----------
    name:
        One of :data:`POLICY_NAMES` or ``"oracle"`` (case-insensitive;
        a few spelling aliases are accepted).
    model:
        Configures the Preserve policy's Eq. 2 predictor; ignored by
        the others.
    engine:
        Match-scan engine for the scanning policies (Greedy, Preserve,
        Oracle): ``"batch"`` (vectorized, the default) or ``"scalar"``
        (the bit-identical reference path).  Ignored by Baseline and
        Topo-aware, which never scan.
    """
    key = name.lower()
    if key == "baseline":
        return BaselinePolicy()
    if key in ("topo-aware", "topo_aware", "topoaware"):
        return TopoAwarePolicy()
    if key == "greedy":
        return GreedyPolicy(engine=engine)
    if key in ("preserve", "preservation"):
        if model is not None:
            return PreservePolicy(model, engine=engine)
        return PreservePolicy(engine=engine)
    if key == "oracle":
        from .oracle import OraclePolicy

        return OraclePolicy(engine=engine)
    known = ", ".join(POLICY_NAMES + ["oracle"])
    raise KeyError(f"unknown policy {name!r}; known: {known}")


def all_policies(
    model: Optional[EffectiveBandwidthModel] = None,
    engine: str = "batch",
) -> Dict[str, AllocationPolicy]:
    """All four evaluation policies keyed by name."""
    return {
        name: make_policy(name, model, engine=engine) for name in POLICY_NAMES
    }
