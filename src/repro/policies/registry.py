"""Policy registry: the four policies of the paper's evaluation, by name."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..scoring.effective import EffectiveBandwidthModel
from .base import AllocationPolicy
from .baseline import BaselinePolicy
from .greedy import GreedyPolicy
from .preserve import PreservePolicy
from .topo_aware import TopoAwarePolicy

#: Evaluation order used throughout the paper's figures.
POLICY_NAMES: List[str] = ["baseline", "topo-aware", "greedy", "preserve"]


def make_policy(
    name: str, model: Optional[EffectiveBandwidthModel] = None
) -> AllocationPolicy:
    """Instantiate a policy by name.

    ``model`` configures the Preserve policy's Eq. 2 predictor and is
    ignored by the others.
    """
    key = name.lower()
    if key == "baseline":
        return BaselinePolicy()
    if key in ("topo-aware", "topo_aware", "topoaware"):
        return TopoAwarePolicy()
    if key == "greedy":
        return GreedyPolicy()
    if key in ("preserve", "preservation"):
        return PreservePolicy(model) if model is not None else PreservePolicy()
    if key == "oracle":
        from .oracle import OraclePolicy

        return OraclePolicy()
    known = ", ".join(POLICY_NAMES + ["oracle"])
    raise KeyError(f"unknown policy {name!r}; known: {known}")


def all_policies(
    model: Optional[EffectiveBandwidthModel] = None,
) -> Dict[str, AllocationPolicy]:
    """All four evaluation policies keyed by name."""
    return {name: make_policy(name, model) for name in POLICY_NAMES}
