"""The MAPA framework (paper Fig. 7): match → score → select → update.

:class:`Mapa` wires together the pieces: it owns the server's
:class:`~repro.allocator.state.AllocationState`, runs the configured
pattern-selection policy over the free GPUs for each request, commits the
chosen allocation, and restores the hardware graph when jobs finish.  It
also annotates every successful allocation with the full score vector
(AggBW, predicted EffBW, PreservedBW) so downstream logging (the
simulator's Fig. 14 log file) needs no recomputation.
"""

from __future__ import annotations

import inspect
from typing import Dict, Hashable, Optional, Tuple

from ..matching.candidates import Match
from ..policies.base import Allocation, AllocationPolicy, AllocationRequest
from ..scoring.aggregate import aggregated_bandwidth
from ..scoring.census import census_of_allocation
from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..scoring.preserved import preserved_bandwidth
from ..topology.hardware import HardwareGraph
from .state import AllocationState


class Mapa:
    """Multi-Accelerator Pattern Allocation engine for one server.

    Parameters
    ----------
    hardware:
        The server's hardware graph.
    policy:
        Pattern-selection policy (Baseline / Topo-aware / Greedy /
        Preserve).
    model:
        Eq. 2 model used to annotate allocations with a predicted
        effective bandwidth (independent of whatever the policy used
        internally), so every policy's decisions are scored on the same
        yardstick — exactly how Fig. 13(c, d) compares policies.
    annotate_memo:
        ``"split"`` (default) memoizes the three score components by
        their *own* minimal keys — AggBW by the match's edge tuple,
        census/Eq. 2 by the GPU tuple, Eq. 3 PreservedBW by the
        post-allocation free bitmask — so a winner commits cheaply even
        on a never-seen free set, as long as any component recurred.
        ``"combined"`` keeps the historical single memo keyed by the
        whole (free set, GPUs, edges, score keys) tuple; the fleet
        benchmark's object-mode baseline runs with it.  Both are exact
        replays of the uncached math, byte-identical by construction.
    """

    def __init__(
        self,
        hardware: HardwareGraph,
        policy: AllocationPolicy,
        model: EffectiveBandwidthModel = PAPER_MODEL,
        annotate_memo: str = "split",
    ) -> None:
        self.hardware = hardware
        self.policy = policy
        self.model = model
        self.state = AllocationState(hardware)
        self._anon_counter = 0
        if annotate_memo not in ("split", "combined"):
            raise ValueError(
                f"annotate_memo must be 'split' or 'combined', got {annotate_memo!r}"
            )
        self.annotate_memo = annotate_memo
        # Combined mode: the full score vector of a committed
        # allocation is a pure function of (free set, GPUs, match
        # edges, which scores the policy already filled in) for this
        # engine's fixed hardware/model, and replays commit the same
        # winners on recurring free sets over and over.  One run, one
        # lifetime; keys are the state's incremental bitmask plus the
        # proposal's identity tuples.
        self._annotate_memo: Dict[Tuple, Dict[str, float]] = {}
        # Split mode: each component keyed by exactly what it depends
        # on.  aggregated_bandwidth reads only the match's edges;
        # census_of_allocation / Eq. 2 read only the GPU tuple; Eq. 3
        # PreservedBW is remaining_bandwidth of the *post-allocation*
        # free set, so its key is the pre-commit bitmask with the
        # matched vertices' bits cleared.
        self._agg_memo: Dict[Tuple, float] = {}
        self._census_memo: Dict[Tuple[int, ...], Tuple[float, float, float, float]] = {}
        self._preserved_memo: Dict[int, float] = {}
        # Bit per GPU, same convention as AllocationState.free_bitmask
        # (bit i = i-th GPU of the sorted GPU tuple); plus a per-vertex-
        # tuple mask memo so recurring winners clear their bits in O(1).
        self._gpu_bit: Dict[int, int] = {
            g: 1 << i for i, g in enumerate(hardware.gpus)
        }
        self._vertex_mask_memo: Dict[Tuple[int, ...], int] = {}
        # Scan-memoizing policies take the state's incremental free-set
        # bitmask so their cache key costs O(1); detected by signature
        # so third-party three-argument policies keep working.
        try:
            self._policy_takes_mask = (
                "free_mask" in inspect.signature(policy.allocate).parameters
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._policy_takes_mask = False

    # ------------------------------------------------------------------ #
    def can_ever_fit(self, request: AllocationRequest) -> bool:
        """Whether the request fits an *idle* server at all."""
        return request.num_gpus <= self.hardware.num_gpus

    def propose(self, request: AllocationRequest) -> Optional[Allocation]:
        """Run the policy on the current free GPUs without committing.

        The uncommitted proposal the policy selected, or ``None`` when
        the request cannot be satisfied.  The free pool is served as
        the state's cached sorted tuple, and scan-memoizing policies
        additionally receive the incrementally maintained free-set
        bitmask — the key of the content-addressed scan cache — so a
        repeat of a previously seen free set costs one cache lookup.
        Callers that commit (``try_allocate``, the multi-server
        best-score prober) annotate and apply the proposal themselves.
        """
        available = self.state.free_sorted
        if self._policy_takes_mask:
            return self.policy.allocate(
                request,
                self.hardware,
                available,
                free_mask=self.state.free_bitmask,
            )
        return self.policy.allocate(request, self.hardware, available)

    def try_allocate(self, request: AllocationRequest) -> Optional[Allocation]:
        """Attempt to place ``request`` on the currently free GPUs.

        On success the allocation is committed to the state and returned
        with a complete score annotation; on failure (not enough suitable
        GPUs) the state is untouched and ``None`` is returned.
        """
        if not self.can_ever_fit(request):
            raise ValueError(
                f"job needs {request.num_gpus} GPUs but "
                f"{self.hardware.name} has only {self.hardware.num_gpus}"
            )
        available = self.state.free_sorted
        proposal = self.propose(request)
        if proposal is None:
            return None
        job_id: Hashable = request.job_id
        if job_id is None:
            # Anonymous request: mint a handle and hand it back on the
            # allocation so the caller can release the job later.
            self._anon_counter += 1
            job_id = ("anon", self._anon_counter)
        annotated = self._annotate(proposal, available, job_id)
        self.state.allocate(job_id, annotated.gpus)
        return annotated

    def release(self, job_id: Hashable) -> Tuple[int, ...]:
        """Hand a finished job's GPUs back (the "Job Finished" signal)."""
        return self.state.release(job_id)

    def reset(self) -> None:
        """Release every job (e.g. between simulation runs)."""
        self.state.reset()

    # ------------------------------------------------------------------ #
    def _annotate(
        self, alloc: Allocation, available, job_id: Hashable
    ) -> Allocation:
        """Fill in the full score vector and the committed ``job_id``.

        Memoized per (pre-commit free bitmask, GPUs, match edges,
        policy-filled score keys): an exact replay of the uncached
        computation, so repeated commits of a cached winner on a
        recurring free set skip the census/Eq. 2/Eq. 3 recomputation.
        The memoized dict is shared read-only — :class:`Allocation`
        copies it into its frozen mapping view at construction.
        """
        match = alloc.match
        if match is None:
            return Allocation(
                gpus=alloc.gpus,
                match=None,
                scores=dict(alloc.scores),
                job_id=job_id,
            )
        if self.annotate_memo == "split":
            return self._annotate_split(alloc, match, available, job_id)
        key = (
            self.state.free_bitmask,
            alloc.gpus,
            match.edges,
            frozenset(alloc.scores),
        )
        scores = self._annotate_memo.get(key)
        if scores is None:
            scores = dict(alloc.scores)
            scores.setdefault("agg_bw", aggregated_bandwidth(self.hardware, match))
            # Eq. 2 operates on the induced census of the matched GPU set
            # (E(P) ⊆ E(M): the match is the induced subgraph).
            census = census_of_allocation(self.hardware, alloc.gpus)
            scores["census_x"] = float(census.x)
            scores["census_y"] = float(census.y)
            scores["census_z"] = float(census.z)
            scores.setdefault(
                "effective_bw", self.model.predict_census(census)
            )
            scores.setdefault(
                "preserved_bw",
                preserved_bandwidth(self.hardware, match, available),
            )
            self._annotate_memo[key] = scores
        return Allocation(
            gpus=alloc.gpus, match=match, scores=scores, job_id=job_id
        )

    def _annotate_split(
        self, alloc: Allocation, match: Match, available, job_id: Hashable
    ) -> Allocation:
        """Component-wise annotation memo (``annotate_memo="split"``).

        Identical arithmetic to the combined path — each component is
        the same pure function call, just cached under its minimal key.
        Policy-filled scores still win (the ``setdefault`` discipline),
        and census_x/y/z are still unconditionally (re)written from the
        induced census, exactly as the combined path does.

        The finished score vector is additionally pinned onto the
        proposal *object* (keyed by the model's coefficient vector).
        Scan-cache winner objects live exactly as long as their
        content-addressed ``(wiring, pattern, free set)`` entry — every
        input of the annotation is fixed for the object's lifetime — so
        a recurring winner re-annotates in one dict lookup, across
        replays when the cache is shared.  Engines that build fresh
        proposals per call (batch/scalar) simply never hit this memo.
        """
        memo: Optional[Dict[Tuple[float, ...], Dict[str, float]]] = getattr(
            alloc, "_annotated", None
        )
        if memo is not None:
            scores = memo.get(self.model.coefficients)
            if scores is not None:
                return Allocation(
                    gpus=alloc.gpus, match=match, scores=scores, job_id=job_id
                )
        scores = dict(alloc.scores)
        if "agg_bw" not in scores:
            agg = self._agg_memo.get(match.edges)
            if agg is None:
                agg = aggregated_bandwidth(self.hardware, match)
                self._agg_memo[match.edges] = agg
            scores["agg_bw"] = agg
        census = self._census_memo.get(alloc.gpus)
        if census is None:
            induced = census_of_allocation(self.hardware, alloc.gpus)
            census = (
                float(induced.x),
                float(induced.y),
                float(induced.z),
                self.model.predict_census(induced),
            )
            self._census_memo[alloc.gpus] = census
        scores["census_x"] = census[0]
        scores["census_y"] = census[1]
        scores["census_z"] = census[2]
        if "effective_bw" not in scores:
            scores["effective_bw"] = census[3]
        if "preserved_bw" not in scores:
            vmask = self._vertex_mask_memo.get(match.vertices)
            if vmask is None:
                vmask = 0
                for g in match.vertices:
                    vmask |= self._gpu_bit[g]
                self._vertex_mask_memo[match.vertices] = vmask
            remaining_mask = self.state.free_bitmask & ~vmask
            preserved = self._preserved_memo.get(remaining_mask)
            if preserved is None:
                preserved = preserved_bandwidth(self.hardware, match, available)
                self._preserved_memo[remaining_mask] = preserved
            scores["preserved_bw"] = preserved
        if memo is None:
            memo = {}
            object.__setattr__(alloc, "_annotated", memo)
        memo[self.model.coefficients] = scores
        return Allocation(
            gpus=alloc.gpus, match=match, scores=scores, job_id=job_id
        )
