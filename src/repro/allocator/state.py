"""Hardware allocation state management (paper section 3.6).

The hardware graph is updated whenever a job is scheduled (its GPUs and
their incident links leave the pool) and whenever a job finishes (they
return).  :class:`AllocationState` tracks which GPUs are free, which job
owns which GPUs, and enforces the obvious invariants: no GPU is ever
double-allocated and releases restore exactly what was allocated.

The free pool **is the bitmask** (bit *i* = *i*-th GPU of the sorted
GPU tuple): allocate/release validate and flip bits with a couple of
integer operations, and the derived views
(:attr:`AllocationState.free_gpus`, :attr:`AllocationState.free_sorted`)
are rebuilt from the mask lazily on first read after a mutation, then
cached.  The match scan asks for the free set on every simulated event
— often several times per event on a multi-server fleet — so serving a
cached tuple instead of rebuilding a set each time keeps
candidate-server pruning off the hot path.

Placement and release deltas are additionally published two ways for
the caching layers above:

* :attr:`AllocationState.free_bitmask` — one bit per GPU (bit *i* is
  the *i*-th GPU of the sorted GPU tuple), XOR-updated from each
  delta, so the content-addressed scan cache
  (:mod:`repro.scoring.memo`) builds its key in O(1) per event;
* :meth:`AllocationState.drain_dirty` — the accumulated *dirty set* of
  GPUs touched since the last drain, consumed by the multi-server
  scheduler to re-bucket only servers whose free set actually changed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from ..topology.hardware import HardwareGraph


class AllocationError(RuntimeError):
    """Raised on conflicting allocate / release operations."""


class AllocationState:
    """Mutable view of which GPUs a server currently has free."""

    def __init__(self, hardware: HardwareGraph) -> None:
        self.hardware = hardware
        self._gpus: Tuple[int, ...] = tuple(sorted(hardware.gpus))
        self._free_frozen: Optional[FrozenSet[int]] = None
        self._free_tuple: Optional[Tuple[int, ...]] = None
        self._version: int = 0
        self._owner: Dict[int, Hashable] = {}
        self._jobs: Dict[Hashable, Tuple[int, ...]] = {}
        # Bit per GPU (position = index in the sorted GPU tuple),
        # XOR-maintained from placement/release deltas; plus the dirty
        # set of GPUs touched since the last drain_dirty().  The mask
        # *is* the free set — the sorted tuple / frozenset views are
        # derived from it lazily, so allocate/release touch only
        # integers and the two job-bookkeeping dicts.
        self._bit: Dict[int, int] = {
            g: 1 << i for i, g in enumerate(self._gpus)
        }
        self._full_mask: int = (1 << len(self._bit)) - 1
        self._mask: int = self._full_mask
        self._nfree: int = len(self._gpus)
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------ #
    def _invalidate(self) -> None:
        """Drop the cached free-set views after a mutation."""
        self._free_frozen = None
        self._free_tuple = None
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every allocate/release/reset.

        For callers that cache per-state derived structures (remapped
        link tables, candidate matrices) and need an O(1) staleness
        check.  No production caller yet — the churn property tests
        pin its semantics so such caches can rely on it.
        """
        return self._version

    @property
    def free_bitmask(self) -> int:
        """The free set as a bitmask, maintained incrementally (O(1)).

        Bit *i* is set iff the *i*-th GPU of the sorted GPU tuple is
        free — the convention :meth:`repro.scoring.memo.ScanCache.bit_masks`
        mirrors, so this value keys the scan cache directly without
        touching the free list.  Every allocate/release XORs exactly
        the delta's bits in (the dirty-set publication).
        """
        return self._mask

    def drain_dirty(self) -> FrozenSet[int]:
        """GPUs whose free/busy state was touched since the last drain.

        Consumers (the multi-server scheduler's candidate index) use a
        non-empty result as the signal that this server's free set —
        and therefore any per-server cached winner — is stale.  The
        set is cleared by the call; it is bounded by the server's GPU
        count, so an unconsumed state never grows without bound.
        """
        dirty = frozenset(self._dirty)
        self._dirty.clear()
        return dirty

    def consume_dirty(self) -> bool:
        """Clear the dirty set; report whether it was non-empty.

        The boolean twin of :meth:`drain_dirty` for consumers that only
        need the staleness *signal*, not the touched GPUs — the
        multi-server scheduler re-buckets a server off its (cached)
        free count alone, so building a frozenset per event is wasted
        work on the hot path.
        """
        if self._dirty:
            self._dirty.clear()
            return True
        return False

    @property
    def free_gpus(self) -> FrozenSet[int]:
        """GPUs currently available for allocation (cached frozenset)."""
        if self._free_frozen is None:
            self._free_frozen = frozenset(self.free_sorted)
        return self._free_frozen

    @property
    def free_sorted(self) -> Tuple[int, ...]:
        """Free GPUs as an ascending tuple (cached; the scan's input).

        Derived from the bitmask on first read after a mutation (one
        pass over the server's GPU tuple, which is already sorted), then
        cached until the next mutation — reading it never re-sorts.
        """
        if self._free_tuple is None:
            mask = self._mask
            bit = self._bit
            self._free_tuple = tuple(g for g in self._gpus if mask & bit[g])
        return self._free_tuple

    @property
    def num_free(self) -> int:
        """Free-GPU count (O(1))."""
        return self._nfree

    @property
    def num_allocated(self) -> int:
        """Allocated-GPU count."""
        return self.hardware.num_gpus - self._nfree

    @property
    def active_jobs(self) -> Tuple[Hashable, ...]:
        """Ids of jobs currently holding GPUs, in allocation order."""
        return tuple(self._jobs)

    def is_free(self, gpu: int) -> bool:
        """Whether ``gpu`` is currently unallocated."""
        bit = self._bit.get(gpu)
        if bit is None:
            raise KeyError(f"unknown GPU {gpu}")
        return bool(self._mask & bit)

    def owner_of(self, gpu: int) -> Hashable | None:
        """Job currently holding ``gpu`` (None if free)."""
        if gpu not in self.hardware:
            raise KeyError(f"unknown GPU {gpu}")
        return self._owner.get(gpu)

    def gpus_of(self, job_id: Hashable) -> Tuple[int, ...]:
        """The GPUs ``job_id`` holds (raises if it holds none)."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None

    # ------------------------------------------------------------------ #
    def mask_of(self, gpus: Iterable[int]) -> int:
        """The bitmask covering ``gpus`` (OR of their per-GPU bits).

        Raises :class:`KeyError` on a GPU this server does not have.
        Pure in the server's sorted GPU tuple, so callers may memoize
        the result under any key that pins the wiring (the decision
        memo stores it next to each winner).
        """
        bits = self._bit
        delta = 0
        for g in gpus:
            delta |= bits[g]
        return delta

    def allocate_prevalidated(
        self, job_id: Hashable, gpus: Tuple[int, ...], delta: int
    ) -> None:
        """:meth:`allocate` for a ``(gpus, delta)`` pair built by
        :meth:`mask_of` from an earlier committed allocation.

        The decision-memo hit path re-commits the same winner thousands
        of times per replay; validating the whole set with one mask
        intersection (instead of per-GPU dict probes) keeps that path
        O(1) in everything but the owner-table writes.  ``gpus`` must
        be the canonical sorted duplicate-free tuple and ``delta`` its
        exact bitmask — both are stored alongside the memoized winner,
        whose content-addressed key already pins the wiring.

        Unlike :meth:`allocate` this does **not** publish a dirty set:
        the only caller re-buckets its candidate index directly, and
        skipping the set churn is the point of the fast path.
        """
        mask = self._mask
        if (mask & delta) != delta:
            raise AllocationError(
                f"allocation {gpus} overlaps busy GPUs (mask {delta:#x})"
            )
        if job_id in self._jobs:
            raise AllocationError(f"job {job_id!r} already holds an allocation")
        owner = self._owner
        for g in gpus:
            owner[g] = job_id
        self._mask = mask ^ delta
        self._nfree -= len(gpus)
        self._jobs[job_id] = gpus
        self._invalidate()

    def allocate(self, job_id: Hashable, gpus: Iterable[int]) -> None:
        """Assign ``gpus`` to ``job_id``, removing them from the free pool."""
        chosen = tuple(sorted(set(gpus)))
        if not chosen:
            raise AllocationError("empty allocation")
        if job_id in self._jobs:
            raise AllocationError(f"job {job_id!r} already holds an allocation")
        bits = self._bit
        mask = self._mask
        delta = 0
        for g in chosen:
            b = bits.get(g)
            if b is None:
                raise KeyError(f"unknown GPU {g}")
            if not (mask & b):
                raise AllocationError(
                    f"GPU {g} is busy (owned by {self._owner[g]!r})"
                )
            delta |= b
        owner = self._owner
        for g in chosen:
            owner[g] = job_id
        self._mask = mask ^ delta
        self._nfree -= len(chosen)
        self._dirty.update(chosen)
        self._jobs[job_id] = chosen
        self._invalidate()

    def release(self, job_id: Hashable) -> Tuple[int, ...]:
        """Return ``job_id``'s GPUs to the pool; returns the freed GPUs."""
        try:
            gpus = self._jobs.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        owner = self._owner
        bits = self._bit
        delta = 0
        for g in gpus:
            del owner[g]
            delta |= bits[g]
        self._mask |= delta
        self._nfree += len(gpus)
        self._dirty.update(gpus)
        self._invalidate()
        return gpus

    def reset(self) -> None:
        """Release everything (e.g. between simulation runs)."""
        mask = self._mask
        self._dirty.update(
            g for g in self._gpus if not (mask & self._bit[g])
        )
        self._mask = self._full_mask
        self._nfree = len(self._gpus)
        self._owner.clear()
        self._jobs.clear()
        self._invalidate()

    def check_invariants(self) -> None:
        """Internal consistency check, used heavily by property tests."""
        free = {g for g in self._gpus if self._mask & self._bit[g]}
        busy = set(self._owner)
        if busy & free:
            raise AssertionError("GPU marked both free and owned")
        if busy | free != set(self._gpus):
            raise AssertionError("GPU neither free nor owned")
        from_jobs = {g for gpus in self._jobs.values() for g in gpus}
        if from_jobs != busy:
            raise AssertionError("job table and owner table disagree")
        for job, gpus in self._jobs.items():
            for g in gpus:
                if self._owner[g] != job:
                    raise AssertionError(f"GPU {g} owner mismatch")
        # The derived views must mirror the mask exactly.
        if self._nfree != len(free):
            raise AssertionError("free count out of sync with bitmask")
        if self._free_frozen is not None and self._free_frozen != free:
            raise AssertionError("cached free frozenset is stale")
        if self._free_tuple is not None and self._free_tuple != tuple(
            sorted(free)
        ):
            raise AssertionError("cached free tuple is stale")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AllocationState({self.hardware.name!r}, "
            f"free={list(self.free_sorted)}, jobs={len(self._jobs)})"
        )
