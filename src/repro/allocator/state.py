"""Hardware allocation state management (paper section 3.6).

The hardware graph is updated whenever a job is scheduled (its GPUs and
their incident links leave the pool) and whenever a job finishes (they
return).  :class:`AllocationState` tracks which GPUs are free, which job
owns which GPUs, and enforces the obvious invariants: no GPU is ever
double-allocated and releases restore exactly what was allocated.

The free pool is kept as an **incremental index**: a sorted list
maintained by binary insertion/removal on every allocate/release, with
the derived views (:attr:`AllocationState.free_gpus`,
:attr:`AllocationState.free_sorted`) cached until the next mutation.
The match scan asks for the free set on every simulated event — often
several times per event on a multi-server fleet — so serving a cached
tuple instead of rebuilding a set each time keeps candidate-server
pruning off the hot path.

Placement and release deltas are additionally published two ways for
the caching layers above:

* :attr:`AllocationState.free_bitmask` — one bit per GPU (bit *i* is
  the *i*-th GPU of the sorted GPU tuple), XOR-updated from each
  delta, so the content-addressed scan cache
  (:mod:`repro.scoring.memo`) builds its key in O(1) per event;
* :meth:`AllocationState.drain_dirty` — the accumulated *dirty set* of
  GPUs touched since the last drain, consumed by the multi-server
  scheduler to re-bucket only servers whose free set actually changed.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from ..topology.hardware import HardwareGraph


class AllocationError(RuntimeError):
    """Raised on conflicting allocate / release operations."""


class AllocationState:
    """Mutable view of which GPUs a server currently has free."""

    def __init__(self, hardware: HardwareGraph) -> None:
        self.hardware = hardware
        self._free: Set[int] = set(hardware.gpus)
        self._free_list: List[int] = sorted(self._free)
        self._free_frozen: Optional[FrozenSet[int]] = None
        self._free_tuple: Optional[Tuple[int, ...]] = None
        self._version: int = 0
        self._owner: Dict[int, Hashable] = {}
        self._jobs: Dict[Hashable, Tuple[int, ...]] = {}
        # Bit per GPU (position = index in the sorted GPU tuple),
        # XOR-maintained from placement/release deltas; plus the dirty
        # set of GPUs touched since the last drain_dirty().
        self._bit: Dict[int, int] = {
            g: 1 << i for i, g in enumerate(hardware.gpus)
        }
        self._full_mask: int = (1 << len(self._bit)) - 1
        self._mask: int = self._full_mask
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------ #
    def _invalidate(self) -> None:
        """Drop the cached free-set views after a mutation."""
        self._free_frozen = None
        self._free_tuple = None
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every allocate/release/reset.

        For callers that cache per-state derived structures (remapped
        link tables, candidate matrices) and need an O(1) staleness
        check.  No production caller yet — the churn property tests
        pin its semantics so such caches can rely on it.
        """
        return self._version

    @property
    def free_bitmask(self) -> int:
        """The free set as a bitmask, maintained incrementally (O(1)).

        Bit *i* is set iff the *i*-th GPU of the sorted GPU tuple is
        free — the convention :meth:`repro.scoring.memo.ScanCache.bit_masks`
        mirrors, so this value keys the scan cache directly without
        touching the free list.  Every allocate/release XORs exactly
        the delta's bits in (the dirty-set publication).
        """
        return self._mask

    def drain_dirty(self) -> FrozenSet[int]:
        """GPUs whose free/busy state was touched since the last drain.

        Consumers (the multi-server scheduler's candidate index) use a
        non-empty result as the signal that this server's free set —
        and therefore any per-server cached winner — is stale.  The
        set is cleared by the call; it is bounded by the server's GPU
        count, so an unconsumed state never grows without bound.
        """
        dirty = frozenset(self._dirty)
        self._dirty.clear()
        return dirty

    @property
    def free_gpus(self) -> FrozenSet[int]:
        """GPUs currently available for allocation (cached frozenset)."""
        if self._free_frozen is None:
            self._free_frozen = frozenset(self._free_list)
        return self._free_frozen

    @property
    def free_sorted(self) -> Tuple[int, ...]:
        """Free GPUs as an ascending tuple (cached; the scan's input).

        Maintained incrementally — reading it never re-sorts or rebuilds
        the underlying pool.
        """
        if self._free_tuple is None:
            self._free_tuple = tuple(self._free_list)
        return self._free_tuple

    @property
    def num_free(self) -> int:
        """Free-GPU count (O(1))."""
        return len(self._free)

    @property
    def num_allocated(self) -> int:
        """Allocated-GPU count."""
        return self.hardware.num_gpus - len(self._free)

    @property
    def active_jobs(self) -> Tuple[Hashable, ...]:
        """Ids of jobs currently holding GPUs, in allocation order."""
        return tuple(self._jobs)

    def is_free(self, gpu: int) -> bool:
        """Whether ``gpu`` is currently unallocated."""
        if gpu not in self.hardware:
            raise KeyError(f"unknown GPU {gpu}")
        return gpu in self._free

    def owner_of(self, gpu: int) -> Hashable | None:
        """Job currently holding ``gpu`` (None if free)."""
        if gpu not in self.hardware:
            raise KeyError(f"unknown GPU {gpu}")
        return self._owner.get(gpu)

    def gpus_of(self, job_id: Hashable) -> Tuple[int, ...]:
        """The GPUs ``job_id`` holds (raises if it holds none)."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None

    # ------------------------------------------------------------------ #
    def allocate(self, job_id: Hashable, gpus: Iterable[int]) -> None:
        """Assign ``gpus`` to ``job_id``, removing them from the free pool."""
        chosen = tuple(sorted(set(gpus)))
        if not chosen:
            raise AllocationError("empty allocation")
        if job_id in self._jobs:
            raise AllocationError(f"job {job_id!r} already holds an allocation")
        for g in chosen:
            if g not in self.hardware:
                raise KeyError(f"unknown GPU {g}")
            if g not in self._free:
                raise AllocationError(
                    f"GPU {g} is busy (owned by {self._owner[g]!r})"
                )
        for g in chosen:
            self._free.discard(g)
            del self._free_list[bisect_left(self._free_list, g)]
            self._owner[g] = job_id
            self._mask ^= self._bit[g]
            self._dirty.add(g)
        self._jobs[job_id] = chosen
        self._invalidate()

    def release(self, job_id: Hashable) -> Tuple[int, ...]:
        """Return ``job_id``'s GPUs to the pool; returns the freed GPUs."""
        try:
            gpus = self._jobs.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        for g in gpus:
            del self._owner[g]
            self._free.add(g)
            insort(self._free_list, g)
            self._mask ^= self._bit[g]
            self._dirty.add(g)
        self._invalidate()
        return gpus

    def reset(self) -> None:
        """Release everything (e.g. between simulation runs)."""
        self._dirty.update(g for g in self.hardware.gpus if g not in self._free)
        self._free = set(self.hardware.gpus)
        self._free_list = sorted(self._free)
        self._mask = self._full_mask
        self._owner.clear()
        self._jobs.clear()
        self._invalidate()

    def check_invariants(self) -> None:
        """Internal consistency check, used heavily by property tests."""
        busy = set(self._owner)
        if busy & self._free:
            raise AssertionError("GPU marked both free and owned")
        if busy | self._free != set(self.hardware.gpus):
            raise AssertionError("GPU neither free nor owned")
        from_jobs = {g for gpus in self._jobs.values() for g in gpus}
        if from_jobs != busy:
            raise AssertionError("job table and owner table disagree")
        for job, gpus in self._jobs.items():
            for g in gpus:
                if self._owner[g] != job:
                    raise AssertionError(f"GPU {g} owner mismatch")
        # The incremental index must mirror the free set exactly.
        if self._free_list != sorted(self._free):
            raise AssertionError("free-GPU index out of sync with free set")
        if self._free_frozen is not None and self._free_frozen != self._free:
            raise AssertionError("cached free frozenset is stale")
        if self._free_tuple is not None and self._free_tuple != tuple(
            self._free_list
        ):
            raise AssertionError("cached free tuple is stale")
        expected_mask = 0
        for g in self._free:
            expected_mask |= self._bit[g]
        if self._mask != expected_mask:
            raise AssertionError("incremental free bitmask out of sync")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AllocationState({self.hardware.name!r}, "
            f"free={sorted(self._free)}, jobs={len(self._jobs)})"
        )
