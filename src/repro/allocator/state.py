"""Hardware allocation state management (paper section 3.6).

The hardware graph is updated whenever a job is scheduled (its GPUs and
their incident links leave the pool) and whenever a job finishes (they
return).  :class:`AllocationState` tracks which GPUs are free, which job
owns which GPUs, and enforces the obvious invariants: no GPU is ever
double-allocated and releases restore exactly what was allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Set, Tuple

from ..topology.hardware import HardwareGraph


class AllocationError(RuntimeError):
    """Raised on conflicting allocate / release operations."""


class AllocationState:
    """Mutable view of which GPUs a server currently has free."""

    def __init__(self, hardware: HardwareGraph) -> None:
        self.hardware = hardware
        self._free: Set[int] = set(hardware.gpus)
        self._owner: Dict[int, Hashable] = {}
        self._jobs: Dict[Hashable, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    @property
    def free_gpus(self) -> FrozenSet[int]:
        """GPUs currently available for allocation."""
        return frozenset(self._free)

    @property
    def num_free(self) -> int:
        return len(self._free)

    @property
    def num_allocated(self) -> int:
        return self.hardware.num_gpus - len(self._free)

    @property
    def active_jobs(self) -> Tuple[Hashable, ...]:
        return tuple(self._jobs)

    def is_free(self, gpu: int) -> bool:
        if gpu not in self.hardware:
            raise KeyError(f"unknown GPU {gpu}")
        return gpu in self._free

    def owner_of(self, gpu: int) -> Hashable | None:
        """Job currently holding ``gpu`` (None if free)."""
        if gpu not in self.hardware:
            raise KeyError(f"unknown GPU {gpu}")
        return self._owner.get(gpu)

    def gpus_of(self, job_id: Hashable) -> Tuple[int, ...]:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None

    # ------------------------------------------------------------------ #
    def allocate(self, job_id: Hashable, gpus: Iterable[int]) -> None:
        """Assign ``gpus`` to ``job_id``, removing them from the free pool."""
        chosen = tuple(sorted(set(gpus)))
        if not chosen:
            raise AllocationError("empty allocation")
        if job_id in self._jobs:
            raise AllocationError(f"job {job_id!r} already holds an allocation")
        for g in chosen:
            if g not in self.hardware:
                raise KeyError(f"unknown GPU {g}")
            if g not in self._free:
                raise AllocationError(
                    f"GPU {g} is busy (owned by {self._owner[g]!r})"
                )
        for g in chosen:
            self._free.discard(g)
            self._owner[g] = job_id
        self._jobs[job_id] = chosen

    def release(self, job_id: Hashable) -> Tuple[int, ...]:
        """Return ``job_id``'s GPUs to the pool; returns the freed GPUs."""
        try:
            gpus = self._jobs.pop(job_id)
        except KeyError:
            raise AllocationError(f"job {job_id!r} holds no allocation") from None
        for g in gpus:
            del self._owner[g]
            self._free.add(g)
        return gpus

    def reset(self) -> None:
        """Release everything (e.g. between simulation runs)."""
        self._free = set(self.hardware.gpus)
        self._owner.clear()
        self._jobs.clear()

    def check_invariants(self) -> None:
        """Internal consistency check, used heavily by property tests."""
        busy = set(self._owner)
        if busy & self._free:
            raise AssertionError("GPU marked both free and owned")
        if busy | self._free != set(self.hardware.gpus):
            raise AssertionError("GPU neither free nor owned")
        from_jobs = {g for gpus in self._jobs.values() for g in gpus}
        if from_jobs != busy:
            raise AssertionError("job table and owner table disagree")
        for job, gpus in self._jobs.items():
            for g in gpus:
                if self._owner[g] != job:
                    raise AssertionError(f"GPU {g} owner mismatch")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AllocationState({self.hardware.name!r}, "
            f"free={sorted(self._free)}, jobs={len(self._jobs)})"
        )
