"""MAPA allocation engine: hardware state management and the
match → score → select → update pipeline of paper Fig. 7."""

from .state import AllocationError, AllocationState
from .mapa import Mapa
from .sharing import (
    DEFAULT_CAPACITY,
    SharedAllocationState,
    SharedJobSpec,
    allocate_shared,
)

__all__ = [
    "AllocationError",
    "AllocationState",
    "Mapa",
    "DEFAULT_CAPACITY",
    "SharedAllocationState",
    "SharedJobSpec",
    "allocate_shared",
]
