"""GPU sharing / MIG-style many-to-one allocation (paper section 3.3).

The paper's proposed extension for virtualized accelerators: label
hardware vertices with physical resource capacities (MIG compute
slices, memory), label application slots with requirements, and run
label-aware matching.  :class:`SharedAllocationState` tracks fractional
occupancy per GPU, and :func:`allocate_shared` finds a feasible
many-to-one placement for a resource-annotated job.

An NVIDIA A100-style device exposes up to 7 MIG compute slices; we use
``slices`` and ``memory_gb`` as the default resource axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..appgraph.application import ApplicationGraph
from ..matching.labeled import labeled_monomorphisms, resources_fit
from ..topology.hardware import HardwareGraph
from ..topology.links import is_nvlink

Resources = Mapping[str, float]

#: Default per-GPU capacity: a 7-slice MIG device with 80 GB of memory.
DEFAULT_CAPACITY: Dict[str, float] = {"slices": 7.0, "memory_gb": 80.0}


@dataclass(frozen=True)
class SharedJobSpec:
    """A job whose slots carry resource requirements."""

    pattern: ApplicationGraph
    requirements: Tuple[Resources, ...]
    job_id: Optional[Hashable] = None

    def __post_init__(self) -> None:
        """Require one resource vector per pattern slot."""
        if len(self.requirements) != self.pattern.num_gpus:
            raise ValueError(
                "one requirement vector per pattern slot is required"
            )

    @classmethod
    def uniform(
        cls,
        pattern: ApplicationGraph,
        slices: float = 1.0,
        memory_gb: float = 10.0,
        job_id: Optional[Hashable] = None,
    ) -> "SharedJobSpec":
        """A spec whose every slot needs the same (slices, memory)."""
        req = tuple(
            {"slices": slices, "memory_gb": memory_gb}
            for _ in range(pattern.num_gpus)
        )
        return cls(pattern=pattern, requirements=req, job_id=job_id)


class SharedAllocationState:
    """Fractional per-GPU occupancy bookkeeping."""

    def __init__(
        self,
        hardware: HardwareGraph,
        capacity: Optional[Mapping[int, Resources]] = None,
    ) -> None:
        self.hardware = hardware
        if capacity is None:
            capacity = {g: dict(DEFAULT_CAPACITY) for g in hardware.gpus}
        self._capacity: Dict[int, Dict[str, float]] = {
            g: dict(c) for g, c in capacity.items()
        }
        self._used: Dict[int, Dict[str, float]] = {
            g: {k: 0.0 for k in c} for g, c in self._capacity.items()
        }
        self._jobs: Dict[Hashable, List[Tuple[int, Resources]]] = {}
        # Incremental idle-GPU index: how many committed slot placements
        # touch each GPU (integer counts, so no float-residue pitfalls),
        # plus the set of GPUs no placement touches.  Answers "which
        # GPUs are completely untouched?" in O(1) without scanning the
        # fractional usage tables — e.g. for handing a whole GPU to a
        # non-shared job.
        self._touch: Dict[int, int] = {g: 0 for g in self._capacity}
        self._idle: set = set(self._capacity)
        self._idle_frozen: Optional[frozenset] = None

    # ------------------------------------------------------------------ #
    @property
    def idle_gpus(self) -> frozenset:
        """GPUs no committed placement touches (cached frozenset).

        Maintained incrementally from the per-GPU placement counts: a
        GPU leaves the index when its first slot lands and returns when
        its last one is released, so reading the set never rescans the
        fractional usage tables.
        """
        if self._idle_frozen is None:
            self._idle_frozen = frozenset(self._idle)
        return self._idle_frozen

    def num_idle(self) -> int:
        """How many GPUs are completely untouched (O(1))."""
        return len(self._idle)

    def _touch_gpu(self, gpu: int, delta: int) -> None:
        """Adjust one GPU's placement count, keeping the idle index exact."""
        count = self._touch[gpu] + delta
        if count < 0:
            raise AssertionError(f"GPU {gpu} placement count underflow")
        self._touch[gpu] = count
        if count == 0:
            self._idle.add(gpu)
        else:
            self._idle.discard(gpu)
        self._idle_frozen = None

    # ------------------------------------------------------------------ #
    def available(self, gpu: int) -> Dict[str, float]:
        """Remaining capacity of one GPU."""
        cap = self._capacity[gpu]
        used = self._used[gpu]
        return {k: cap[k] - used.get(k, 0.0) for k in cap}

    def availability(self) -> Dict[int, Dict[str, float]]:
        """Remaining capacity of every GPU."""
        return {g: self.available(g) for g in self._capacity}

    def utilization(self, resource: str = "slices") -> float:
        """Fleet-wide fraction of ``resource`` currently in use."""
        total = sum(c.get(resource, 0.0) for c in self._capacity.values())
        used = sum(u.get(resource, 0.0) for u in self._used.values())
        return used / total if total > 0 else 0.0

    # ------------------------------------------------------------------ #
    def commit(
        self, job_id: Hashable, placements: List[Tuple[int, Resources]]
    ) -> None:
        """Record slot placements (gpu, resources) for a job.

        Validation is against *cumulative* per-GPU demand: a job
        placing several slots on the same GPU must fit as a whole, not
        slot-by-slot against the pre-commit availability.
        """
        if job_id in self._jobs:
            raise ValueError(f"job {job_id!r} already placed")
        demand: Dict[int, Dict[str, float]] = {}
        for gpu, req in placements:
            acc = demand.setdefault(gpu, {})
            for k, v in req.items():
                acc[k] = acc.get(k, 0.0) + v
        for gpu, req in demand.items():
            if not resources_fit(req, self.available(gpu)):
                raise ValueError(f"GPU {gpu} lacks capacity for {req}")
        for gpu, req in placements:
            for k, v in req.items():
                self._used[gpu][k] = self._used[gpu].get(k, 0.0) + v
            self._touch_gpu(gpu, +1)
        self._jobs[job_id] = list(placements)

    def release(self, job_id: Hashable) -> None:
        """Return a job's fractional occupancy to every touched GPU."""
        try:
            placements = self._jobs.pop(job_id)
        except KeyError:
            raise ValueError(f"job {job_id!r} holds no placement") from None
        for gpu, req in placements:
            for k, v in req.items():
                self._used[gpu][k] -= v
            self._touch_gpu(gpu, -1)

    def check_invariants(self) -> None:
        """Usage within capacity and the idle index exactly in sync."""
        for g, used in self._used.items():
            for k, v in used.items():
                if v < -1e-9 or v > self._capacity[g].get(k, 0.0) + 1e-9:
                    raise AssertionError(f"GPU {g} resource {k} out of range: {v}")
        # The idle index must mirror the committed placements exactly.
        touched: Dict[int, int] = {g: 0 for g in self._capacity}
        for placements in self._jobs.values():
            for gpu, _ in placements:
                touched[gpu] += 1
        if touched != self._touch:
            raise AssertionError("placement counts out of sync with jobs")
        expected_idle = {g for g, c in touched.items() if c == 0}
        if self._idle != expected_idle:
            raise AssertionError("idle-GPU index out of sync")
        if self._idle_frozen is not None and self._idle_frozen != self._idle:
            raise AssertionError("cached idle frozenset is stale")


def allocate_shared(
    job: SharedJobSpec,
    state: SharedAllocationState,
    require_nvlink_edges: bool = False,
    max_candidates: int = 2000,
) -> Optional[List[Tuple[int, Resources]]]:
    """Find and commit a many-to-one placement for ``job``.

    Among feasible label-aware matches, picks the one that co-locates on
    the fewest distinct GPUs (densest packing) and, at equal density,
    the one using the fastest links between distinct placements.

    Returns the committed (gpu, resources) list, or ``None``.
    """
    hw = state.hardware
    pattern = job.pattern
    pattern_adj = {v: set(pattern.neighbors(v)) for v in pattern.vertices}
    data_adj = {
        g: {h for h in hw.gpus if h != g} for g in hw.gpus
    }  # complete graph: PCIe fallback always exists

    edge_ok = None
    if require_nvlink_edges:
        def edge_ok(pu, pv, du, dv):  # noqa: ANN001 - predicate signature
            return is_nvlink(hw.link(du, dv))

    best_mapping: Optional[Dict[int, int]] = None
    best_key: Optional[Tuple] = None
    for mapping in labeled_monomorphisms(
        pattern_adj,
        data_adj,
        {v: job.requirements[v] for v in pattern.vertices},
        state.availability(),
        edge_ok=edge_ok,
        many_to_one=True,
        max_results=max_candidates,
    ):
        distinct = len(set(mapping.values()))
        link_bw = sum(
            hw.bandwidth(mapping[u], mapping[v])
            for u, v in pattern.edges
            if mapping[u] != mapping[v]
        )
        # Densest packing first, then fastest links, then lowest GPU ids.
        key = (
            -distinct,
            link_bw,
            tuple(-mapping[v] for v in pattern.vertices),
        )
        if best_key is None or key > best_key:
            best_key = key
            best_mapping = mapping
    if best_mapping is None:
        return None
    mapping = best_mapping
    placements = [
        (mapping[v], job.requirements[v]) for v in pattern.vertices
    ]
    job_key = job.job_id if job.job_id is not None else object()
    state.commit(job_key, placements)
    return placements
