"""The ten evaluation workloads (paper sections 2.3 and 4).

Six Caffe/ImageNet training networks plus three non-NN multi-GPU codes:

==============  ==========  =========  =====================================
Workload        Sensitive?  Pattern    Why (paper)
==============  ==========  =========  =====================================
AlexNet         yes         ring       large messages, enough calls
VGG-16          yes         ring       huge FC gradients, up to 3× on NVLink
ResNet-50       yes         ring       very many medium messages
Inception-v3    yes         ring       most calls of all networks
CaffeNet        no          ring       big messages but too few calls
GoogleNet       no          ring       many calls but all below 10⁵ B
Cusimann        no          single     negligible inter-GPU communication
GMM             no          single     negligible inter-GPU communication
Jacobi          no          chain      <3 % improvement from fast links
==============  ==========  =========  =====================================

The model constants (compute time per iteration, bytes per iteration,
iteration counts) are calibrated so the motivating measurements reproduce:
VGG-16 trains ≈3× faster on a double NVLink than on PCIe while GoogleNet
barely moves (Fig. 2b), and exec-time-vs-EffBW flattens past ~50 GB/s
(Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .profiles import CommProfile


@dataclass(frozen=True)
class Workload:
    """A multi-GPU workload as the allocator and simulator see it."""

    name: str
    bandwidth_sensitive: bool
    pattern: str
    compute_time_per_iter: float  # seconds, per-GPU (weak scaling)
    iterations: int
    profile: CommProfile
    kind: str = "ml-training"

    @property
    def comm_bytes_per_iter(self) -> float:
        return self.profile.bytes_per_iter


def _w(
    name: str,
    sensitive: bool,
    pattern: str,
    t_compute: float,
    iters: int,
    calls: int,
    bytes_per_iter: float,
    sigma: float,
    paper_calls: int | None = None,
    kind: str = "ml-training",
) -> Workload:
    return Workload(
        name=name,
        bandwidth_sensitive=sensitive,
        pattern=pattern,
        compute_time_per_iter=t_compute,
        iterations=iters,
        profile=CommProfile(
            calls_per_iter=calls,
            bytes_per_iter=bytes_per_iter,
            sigma=sigma,
            paper_calls_per_iter=paper_calls,
        ),
        kind=kind,
    )


#: The evaluation workload set, keyed by name.
WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in (
        _w("vgg-16", True, "ring", 0.015, 3000, 160, 1.3e9, 1.4, 160_001),
        _w("alexnet", True, "ring", 0.010, 6000, 16, 4.9e8, 1.6, 80_001),
        _w("resnet-50", True, "ring", 0.020, 6000, 160, 2.05e8, 1.0, 1_600_001),
        _w("inception-v3", True, "ring", 0.018, 6000, 150, 3.0e8, 1.1, 2_830_001),
        _w("caffenet", False, "ring", 0.030, 6000, 16, 5.0e7, 1.6, 84_936),
        _w("googlenet", False, "ring", 0.025, 6000, 400, 3.2e7, 0.9, 640_001),
        _w("cusimann", False, "single", 0.050, 8000, 2, 1.0e6, 1.0, None, "hpc"),
        _w("gmm", False, "single", 0.045, 8000, 2, 1.0e6, 1.0, None, "hpc"),
        _w("jacobi", False, "chain", 0.040, 8000, 4, 1.2e7, 1.0, None, "hpc"),
    )
}

#: The six neural networks of Figs. 2b / 5 / 6, in the paper's order.
ML_NETWORKS: List[str] = [
    "alexnet",
    "googlenet",
    "vgg-16",
    "resnet-50",
    "inception-v3",
    "caffenet",
]

#: Bandwidth-sensitive networks (Figs. 13a / 13c / 18).
SENSITIVE_WORKLOADS: List[str] = [
    name for name, w in WORKLOADS.items() if w.bandwidth_sensitive
]

#: Bandwidth-insensitive workloads (Figs. 13b / 13d).
INSENSITIVE_WORKLOADS: List[str] = [
    name for name, w in WORKLOADS.items() if not w.bandwidth_sensitive
]


def get_workload(name: str) -> Workload:
    """Look up a workload by (case-insensitive) name."""
    try:
        return WORKLOADS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {name!r}; known: {known}") from None
