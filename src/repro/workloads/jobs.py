"""Jobs and job files (paper Fig. 14, top-left).

A job file row is ``ID, NumGPUs, Topology, BW Sensitive`` plus the
workload name; the dispatcher feeds rows into the FIFO queue in order.
Job files round-trip through a simple CSV representation so traces can be
saved, inspected and replayed.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..appgraph import patterns
from ..appgraph.application import ApplicationGraph
from ..policies.base import AllocationRequest
from .catalog import Workload, get_workload

_HEADER = "id,workload,num_gpus,pattern,bw_sensitive,submit_time"


@dataclass(frozen=True)
class Job:
    """One entry of a job file."""

    job_id: int
    workload: str
    num_gpus: int
    pattern: str
    bandwidth_sensitive: bool
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        """Validate GPU count and submit time."""
        if self.num_gpus < 1:
            raise ValueError(f"job {self.job_id}: num_gpus must be ≥ 1")
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: negative submit time")

    # ------------------------------------------------------------------ #
    def application_graph(self) -> ApplicationGraph:
        """The job's communication pattern over its GPU slots.

        Single-GPU jobs always use the trivial pattern regardless of the
        declared pattern name.
        """
        if self.num_gpus == 1:
            return patterns.by_name("single", 1)
        return patterns.by_name(self.pattern, self.num_gpus)

    def request(self) -> AllocationRequest:
        """The allocation request MAPA receives for this job."""
        return AllocationRequest(
            pattern=self.application_graph(),
            bandwidth_sensitive=self.bandwidth_sensitive,
            job_id=self.job_id,
        )

    def workload_spec(self) -> Workload:
        """The catalogued workload profile this job runs."""
        return get_workload(self.workload)

    def to_csv_row(self) -> str:
        """One CSV line in job-file column order."""
        return (
            f"{self.job_id},{self.workload},{self.num_gpus},"
            f"{self.pattern},{int(self.bandwidth_sensitive)},{self.submit_time}"
        )

    @classmethod
    def from_csv_row(cls, row: str) -> "Job":
        """Parse one CSV line (submit time optional, defaults to 0)."""
        parts = [p.strip() for p in row.split(",")]
        if len(parts) not in (5, 6):
            raise ValueError(f"malformed job row: {row!r}")
        submit = float(parts[5]) if len(parts) == 6 else 0.0
        return cls(
            job_id=int(parts[0]),
            workload=parts[1],
            num_gpus=int(parts[2]),
            pattern=parts[3],
            bandwidth_sensitive=bool(int(parts[4])),
            submit_time=submit,
        )


class JobFile:
    """An ordered collection of jobs (the simulator's input)."""

    def __init__(self, jobs: Iterable[Job]) -> None:
        self.jobs: List[Job] = list(jobs)
        ids = [j.job_id for j in self.jobs]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate job ids in job file")

    def __len__(self) -> int:
        """Number of jobs in the trace."""
        return len(self.jobs)

    def __iter__(self) -> Iterator[Job]:
        """Iterate in submission order."""
        return iter(self.jobs)

    def __getitem__(self, idx: int) -> Job:
        """The ``idx``-th job of the trace."""
        return self.jobs[idx]

    def max_gpus(self) -> int:
        """Largest GPU request in the trace (0 when empty)."""
        return max((j.num_gpus for j in self.jobs), default=0)

    # ------------------------------------------------------------------ #
    def to_csv(self) -> str:
        """The whole trace as CSV, header included."""
        buf = io.StringIO()
        buf.write(_HEADER + "\n")
        for job in self.jobs:
            buf.write(job.to_csv_row() + "\n")
        return buf.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "JobFile":
        """Parse a CSV trace (header line optional)."""
        lines = [ln for ln in text.strip().splitlines() if ln.strip()]
        if not lines:
            return cls([])
        start = 1 if lines[0].lower().startswith("id,") else 0
        return cls(Job.from_csv_row(ln) for ln in lines[start:])

    def save(self, path: str) -> None:
        """Write the trace to ``path`` as CSV."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())

    @classmethod
    def load(cls, path: str) -> "JobFile":
        """Read a CSV trace from ``path``."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_csv(fh.read())
