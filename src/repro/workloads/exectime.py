"""Execution-time model for multi-GPU workloads.

Substitution for real Caffe training runs (DESIGN.md #2).  Per-iteration
time decomposes into compute plus ring-all-reduce communication under the
alpha–beta model of :mod:`repro.comm.microbench`:

    t_iter(k, B) = t_compute
                 + 2·(k-1)/k · V / (B · 10⁹)     — bandwidth term
                 + n_calls · α · (k-1)           — latency term

where ``k`` is the GPU count, ``B`` the allocation's peak effective
bandwidth (GB/s), ``V`` the bytes a GPU contributes to collectives per
iteration and ``α`` the per-call launch latency.  Single-GPU jobs pay no
communication.  The latency term is link-independent, which is what makes
call-heavy/small-message networks (GoogleNet) bandwidth *insensitive*
and produces the flattening of Fig. 16 past ~50 GB/s: once the bandwidth
term shrinks below compute + latency, faster links stop helping.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..comm.microbench import LAUNCH_LATENCY_SECONDS, peak_effective_bandwidth
from ..topology.hardware import HardwareGraph
from .catalog import Workload, get_workload


def iteration_time(
    workload: Workload,
    num_gpus: int,
    effective_bw_gbps: float,
    alpha_seconds: float = LAUNCH_LATENCY_SECONDS,
) -> float:
    """Seconds per training iteration for a given allocation quality."""
    if num_gpus < 1:
        raise ValueError("num_gpus must be positive")
    t = workload.compute_time_per_iter
    if num_gpus == 1:
        return t
    if effective_bw_gbps <= 0:
        raise ValueError("multi-GPU job needs positive effective bandwidth")
    volume = 2.0 * (num_gpus - 1) / num_gpus * workload.comm_bytes_per_iter
    t += volume / (effective_bw_gbps * 1e9)
    t += workload.profile.calls_per_iter * alpha_seconds * (num_gpus - 1)
    return t


def execution_time(
    workload: Workload,
    num_gpus: int,
    effective_bw_gbps: float,
    iterations: Optional[int] = None,
) -> float:
    """Total training time in seconds (``iterations`` defaults to the
    workload's calibrated run length)."""
    iters = workload.iterations if iterations is None else iterations
    return iters * iteration_time(workload, num_gpus, effective_bw_gbps)


def execution_time_on_allocation(
    workload: Workload,
    hardware: HardwareGraph,
    gpus: Iterable[int],
    iterations: Optional[int] = None,
) -> float:
    """Execution time of ``workload`` on a concrete GPU allocation.

    The allocation's peak effective bandwidth comes from the simulated
    NCCL microbenchmark — this is the simulator's ground truth.
    """
    alloc = tuple(set(gpus))
    if len(alloc) == 1:
        return execution_time(workload, 1, float("inf"), iterations)
    bw = peak_effective_bandwidth(hardware, alloc)
    return execution_time(workload, len(alloc), bw, iterations)


def sensitivity_ratio(
    workload: Workload,
    slow_bw_gbps: float = 11.04,
    fast_bw_gbps: float = 46.0,
    num_gpus: int = 2,
) -> float:
    """Speedup from moving a job off PCIe onto a double NVLink.

    The paper's operational definition of bandwidth sensitivity (Figs. 2b
    and 6): sensitive networks gain substantially (VGG-16 ≈ 3×),
    insensitive ones sit near 1×.  Defaults are the modelled effective
    bandwidths of a PCIe pair and a double-NVLink-v2 pair.
    """
    slow = execution_time(workload, num_gpus, slow_bw_gbps)
    fast = execution_time(workload, num_gpus, fast_bw_gbps)
    return slow / fast


def classify_sensitivity(
    workload: Workload, threshold: float = 1.25
) -> bool:
    """Model-derived sensitivity: does the PCIe→NVLink speedup exceed
    ``threshold``?  Tests assert this agrees with the catalogue flags."""
    return sensitivity_ratio(workload) >= threshold
