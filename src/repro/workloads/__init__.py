"""Workload substrate: communication profiles, execution-time model,
workload catalogue, jobs and trace generation."""

from .profiles import CommProfile
from .catalog import (
    INSENSITIVE_WORKLOADS,
    ML_NETWORKS,
    SENSITIVE_WORKLOADS,
    WORKLOADS,
    Workload,
    get_workload,
)
from .exectime import (
    classify_sensitivity,
    execution_time,
    execution_time_on_allocation,
    iteration_time,
    sensitivity_ratio,
)
from .jobs import Job, JobFile
from .generator import generate_job_file, generate_ml_job_file

__all__ = [
    "CommProfile",
    "INSENSITIVE_WORKLOADS",
    "ML_NETWORKS",
    "SENSITIVE_WORKLOADS",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "classify_sensitivity",
    "execution_time",
    "execution_time_on_allocation",
    "iteration_time",
    "sensitivity_ratio",
    "Job",
    "JobFile",
    "generate_job_file",
    "generate_ml_job_file",
]
