"""Per-workload communication profiles (paper Fig. 5).

Each workload carries the quantities the paper characterises in
section 2.3: how many collective calls it makes, how large its messages
are (a lognormal distribution whose CDF reproduces the shape of
Fig. 5a), whether it is bandwidth sensitive, and the raw call counts the
paper prints in Fig. 5b.

Substitution note (DESIGN.md #2/#6): the paper's call counts are
reported per GPU per iteration as measured by instrumented Caffe runs;
our execution-time model uses physically-scaled per-iteration values
(``calls_per_iter`` ≈ number of gradient tensors) plus total bytes moved,
which is what actually determines training time.  The paper's published
counts are preserved verbatim in ``paper_calls_per_iter`` so the Fig. 5b
table can be regenerated exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class CommProfile:
    """Communication behaviour of one workload.

    Attributes
    ----------
    calls_per_iter:
        Collective calls per training iteration in the execution-time
        model (≈ one per gradient tensor).
    bytes_per_iter:
        Total bytes a GPU contributes to collectives per iteration
        (≈ 2 × gradient size for ring all-reduce accounting).
    sigma:
        Lognormal shape of the per-call message-size distribution.
    paper_calls_per_iter:
        The verbatim Fig. 5b count (``None`` for the non-NN workloads the
        paper characterises only qualitatively).
    """

    calls_per_iter: int
    bytes_per_iter: float
    sigma: float
    paper_calls_per_iter: Optional[int] = None

    @property
    def mean_message_bytes(self) -> float:
        """Average collective message size (total bytes / calls)."""
        return self.bytes_per_iter / self.calls_per_iter

    @property
    def median_message_bytes(self) -> float:
        """Median of the lognormal message-size distribution.

        Chosen so the distribution's *mean* equals
        :attr:`mean_message_bytes` (lognormal mean = median·e^{σ²/2}).
        """
        return self.mean_message_bytes / math.exp(self.sigma**2 / 2.0)

    # ------------------------------------------------------------------ #
    def message_size_cdf(self, sizes_bytes: Sequence[float]) -> np.ndarray:
        """CDF of per-call message sizes at the given points (Fig. 5a)."""
        s = np.asarray(sizes_bytes, dtype=float)
        out = np.zeros_like(s)
        positive = s > 0
        z = (np.log(s[positive]) - math.log(self.median_message_bytes)) / self.sigma
        out[positive] = 0.5 * (1.0 + _erf_vec(z / math.sqrt(2.0)))
        return out

    def sample_message_sizes(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` message sizes from the lognormal model (bytes)."""
        return rng.lognormal(
            mean=math.log(self.median_message_bytes), sigma=self.sigma, size=n
        )


def _erf_vec(x: np.ndarray) -> np.ndarray:
    from scipy.special import erf

    return erf(x)
