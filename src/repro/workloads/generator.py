"""Random job-trace generation (paper section 4, "Jobs configuration").

The evaluation trace is 300 jobs: a uniform mix over the workload set
with a uniformly distributed GPU request between 1 and 5 — prior work
(Philly) found multi-tenant GPU requests to be roughly uniform.  All jobs
are submitted at time 0 and drained FIFO, matching the paper's setup.

The canonical parameter values (seed 2021, trace lengths per study) are
centralised in :mod:`repro.experiments.presets`; benchmarks and the
sweep CLI go through there rather than repeating the numbers inline.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .catalog import ML_NETWORKS, WORKLOADS, get_workload
from .jobs import Job, JobFile


def generate_job_file(
    num_jobs: int = 300,
    workload_names: Optional[Sequence[str]] = None,
    min_gpus: int = 1,
    max_gpus: int = 5,
    seed: int = 2021,
    arrival_rate: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> JobFile:
    """Generate a random job file.

    Parameters
    ----------
    num_jobs:
        Trace length (paper: 300; the fragmentation study uses 100).
    workload_names:
        Pool to draw from uniformly; defaults to the full nine-workload
        evaluation set.
    min_gpus, max_gpus:
        Uniform GPU-request range (paper: 1–5).
    seed:
        RNG seed; identical seeds give identical traces, so every policy
        is evaluated on exactly the same job sequence.  Ignored when an
        explicit ``rng`` is passed.
    arrival_rate:
        If given, submit times follow a Poisson process with this rate
        (jobs/second); otherwise everything arrives at t = 0 like the
        paper's batch trace.
    rng:
        Explicit :class:`numpy.random.Generator` to draw from instead of
        seeding a fresh one.  All randomness flows through this single
        generator — the module never touches numpy's global RNG state,
        so traces stay reproducible even when sweep workers in one
        process pool generate them concurrently.  The generator is
        advanced in place; callers sharing one generator across calls
        get a deterministic *sequence* of traces.
    """
    if min_gpus < 1 or max_gpus < min_gpus:
        raise ValueError("need 1 ≤ min_gpus ≤ max_gpus")
    names = list(workload_names) if workload_names is not None else sorted(WORKLOADS)
    for n in names:
        get_workload(n)  # validate early
    if rng is None:
        rng = np.random.default_rng(seed)
    picks = rng.integers(0, len(names), size=num_jobs)
    gpu_counts = rng.integers(min_gpus, max_gpus + 1, size=num_jobs)
    if arrival_rate is not None:
        gaps = rng.exponential(1.0 / arrival_rate, size=num_jobs)
        submits = np.cumsum(gaps)
    else:
        submits = np.zeros(num_jobs)
    jobs: List[Job] = []
    for i in range(num_jobs):
        w = get_workload(names[int(picks[i])])
        jobs.append(
            Job(
                job_id=i + 1,
                workload=w.name,
                num_gpus=int(gpu_counts[i]),
                pattern=w.pattern,
                bandwidth_sensitive=w.bandwidth_sensitive,
                submit_time=float(submits[i]),
            )
        )
    return JobFile(jobs)


def generate_ml_job_file(
    num_jobs: int = 300, seed: int = 2021, max_gpus: int = 5
) -> JobFile:
    """Trace drawn only from the six Caffe networks of Fig. 5."""
    return generate_job_file(
        num_jobs=num_jobs,
        workload_names=ML_NETWORKS,
        max_gpus=max_gpus,
        seed=seed,
    )
