"""Event-driven simulation of a multi-server MAPA cluster.

Reuses the single-node event engine and log records; placements carry
the hosting server's index so per-server utilisation can be analysed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from ..comm.microbench import peak_effective_bandwidth
from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..sim.engine import EventEngine
from ..sim.records import JobRecord, SimulationLog
from ..topology.hardware import HardwareGraph
from ..workloads.exectime import execution_time
from ..workloads.jobs import Job, JobFile
from .scheduler import MultiServerScheduler

_ARRIVAL = "arrival"
_COMPLETION = "completion"


@dataclass(frozen=True)
class ClusterJobRecord:
    """A completed job plus the server that hosted it."""

    record: JobRecord
    server_index: int


class ClusterSimulator:
    """FIFO multi-server simulator (head-of-line blocking across the
    whole cluster, mirroring the single-node discipline)."""

    def __init__(
        self,
        servers: Sequence[HardwareGraph],
        gpu_policy: str = "preserve",
        node_policy: str = "first-fit",
        model: EffectiveBandwidthModel = PAPER_MODEL,
    ) -> None:
        self.scheduler = MultiServerScheduler(
            servers, gpu_policy=gpu_policy, node_policy=node_policy, model=model
        )
        self.engine = EventEngine()
        self.queue: Deque[Job] = deque()
        self.log = SimulationLog(
            f"{gpu_policy}/{node_policy}", f"cluster[{len(servers)}]"
        )
        self.placements: List[ClusterJobRecord] = []
        self._pending: Dict[int, ClusterJobRecord] = {}

    def run(self, job_file: JobFile) -> SimulationLog:
        for job in job_file:
            if not self.scheduler.can_ever_fit(job.request()):
                raise ValueError(
                    f"job {job.job_id} needs {job.num_gpus} GPUs; no server "
                    "is large enough"
                )
            self.engine.schedule(job.submit_time, _ARRIVAL, job)
        while True:
            event = self.engine.pop()
            if event is None:
                break
            _, kind, payload = event
            if kind == _ARRIVAL:
                self.queue.append(payload)
                self._drain()
            elif kind == _COMPLETION:
                self._complete(payload)
                self._drain()
        if self.queue:  # pragma: no cover - defensive
            raise RuntimeError("cluster simulation ended with queued jobs")
        return self.log

    # ------------------------------------------------------------------ #
    def _drain(self) -> None:
        while self.queue:
            job = self.queue[0]
            placement = self.scheduler.try_place(job.request())
            if placement is None:
                return
            self.queue.popleft()
            self._start(job, placement)

    def _start(self, job: Job, placement) -> None:
        now = self.engine.now
        hw = self.scheduler.engines[placement.server_index].hardware
        workload = job.workload_spec()
        gpus = placement.gpus
        if len(gpus) == 1:
            measured = 0.0
            exec_time = execution_time(workload, 1, float("inf"))
        else:
            measured = peak_effective_bandwidth(hw, gpus)
            exec_time = execution_time(workload, len(gpus), measured)
        record = JobRecord(
            job_id=job.job_id,
            workload=job.workload,
            num_gpus=job.num_gpus,
            pattern=job.pattern,
            bandwidth_sensitive=job.bandwidth_sensitive,
            submit_time=job.submit_time,
            start_time=now,
            finish_time=now + exec_time,
            allocation=gpus,
            agg_bw=placement.allocation.scores.get("agg_bw", 0.0),
            predicted_effective_bw=placement.allocation.scores.get(
                "effective_bw", 0.0
            ),
            measured_effective_bw=measured,
        )
        self._pending[job.job_id] = ClusterJobRecord(
            record=record, server_index=placement.server_index
        )
        self.engine.schedule_after(exec_time, _COMPLETION, job.job_id)

    def _complete(self, job_id: int) -> None:
        self.scheduler.release(job_id)
        cluster_record = self._pending.pop(job_id)
        self.placements.append(cluster_record)
        self.log.append(cluster_record.record)

    # ------------------------------------------------------------------ #
    def jobs_per_server(self) -> Dict[int, int]:
        """How many completed jobs each server hosted."""
        counts: Dict[int, int] = {
            i: 0 for i in range(self.scheduler.num_servers)
        }
        for cr in self.placements:
            counts[cr.server_index] += 1
        return counts


def run_cluster(
    servers: Sequence[HardwareGraph],
    job_file: JobFile,
    gpu_policy: str = "preserve",
    node_policy: str = "first-fit",
    model: EffectiveBandwidthModel = PAPER_MODEL,
) -> ClusterSimulator:
    """Simulate a trace on a cluster; returns the simulator (log inside)."""
    sim = ClusterSimulator(servers, gpu_policy, node_policy, model)
    sim.run(job_file)
    return sim
