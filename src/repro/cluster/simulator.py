"""Event-driven simulation of a multi-server MAPA cluster.

A thin wrapper over the unified :class:`~repro.sim.core.SimulationCore`
with the :class:`~repro.cluster.scheduler.MultiServerScheduler` as the
placement backend.  Because the event loop and queue disciplines are
shared with the single-server simulator, multi-server runs support
every registered discipline — FIFO, backfill, SJF, EASY backfilling —
not just the FIFO loop this module used to hard-code.

Placements carry the hosting server's index so per-server utilisation
can be analysed.
"""

from __future__ import annotations

import warnings
from typing import Deque, Dict, List, Sequence

from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..sim.core import PlacementRecord, SimulationCore
from ..sim.disciplines import make_discipline
from ..sim.engine import EventEngine
from ..sim.records import SimulationLog
from ..topology.hardware import HardwareGraph
from ..workloads.jobs import Job, JobFile
from .scheduler import MultiServerScheduler

#: A completed job plus the server that hosted it.  Alias of the core's
#: :class:`~repro.sim.core.PlacementRecord`, kept under the name this
#: module has always exported.
ClusterJobRecord = PlacementRecord


class MultiServerSimulator:
    """Multi-server simulator: one queue, a fleet of MAPA-managed servers.

    ``scheduling`` selects the queue discipline by registry name; the
    default ``"fifo"`` mirrors the single-server (and paper) setup with
    head-of-line blocking across the whole cluster.
    """

    def __init__(
        self,
        servers: Sequence[HardwareGraph],
        gpu_policy: str = "preserve",
        node_policy: str = "first-fit",
        model: EffectiveBandwidthModel = PAPER_MODEL,
        scheduling: str = "fifo",
        engine: str = "cached",
        scan_cache=None,
        core: str = "columnar",
        scan_spill=None,
        dynamics=None,
    ) -> None:
        if core not in ("columnar", "object"):
            raise ValueError(
                f"core must be 'columnar' or 'object', got {core!r}"
            )
        self.scheduler = MultiServerScheduler(
            servers,
            gpu_policy=gpu_policy,
            node_policy=node_policy,
            model=model,
            engine=engine,
            scan_cache=scan_cache,
            # The object core reproduces the historical replay loop end
            # to end: the combined annotation memo it ran with, the
            # bucket-merge candidate walk, the dirty-set drain.
            annotate_memo="split" if core == "columnar" else "combined",
            scan_spill=scan_spill,
            fast_paths=(core == "columnar"),
        )
        self.scheduling = scheduling
        self.core = SimulationCore(
            backend=self.scheduler,
            discipline=make_discipline(scheduling),
            log=SimulationLog(
                f"{gpu_policy}/{node_policy}", f"cluster[{len(servers)}]"
            ),
            columnar=(core == "columnar"),
            dynamics=dynamics,
        )

    def run(self, job_file: JobFile) -> SimulationLog:
        """Simulate the whole trace and return the log."""
        return self.core.run(job_file)

    # ------------------------------------------------------------------ #
    def jobs_per_server(self) -> Dict[int, int]:
        """How many completed jobs each server hosted."""
        return self.core.jobs_per_server()

    # Compatibility accessors (the pre-unification simulator exposed
    # these directly).
    @property
    def placements(self) -> List[ClusterJobRecord]:
        """Completed jobs with their hosting server."""
        return self.core.placements

    @property
    def engine(self) -> EventEngine:
        """The core's event queue."""
        return self.core.engine

    @property
    def queue(self) -> Deque[Job]:
        """Jobs waiting to start."""
        return self.core.queue

    @property
    def log(self) -> SimulationLog:
        """The completed-job log."""
        return self.core.log


class _DeprecatedAliasMeta(type):
    """Keeps ``isinstance(sim, ClusterSimulator)`` working for every
    :class:`MultiServerSimulator` (e.g. the ones ``run_cluster`` returns),
    not just those constructed through the deprecated name."""

    def __instancecheck__(cls, instance: object) -> bool:
        """Any :class:`MultiServerSimulator` counts as the alias."""
        return isinstance(instance, MultiServerSimulator)


class ClusterSimulator(MultiServerSimulator, metaclass=_DeprecatedAliasMeta):
    """Deprecated alias of :class:`MultiServerSimulator`.

    The old name collided with the single-server
    :class:`repro.sim.cluster.ClusterSimulator`; import the new name.
    """

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "repro.cluster.ClusterSimulator is deprecated; use "
            "repro.cluster.MultiServerSimulator instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)


def run_cluster(
    servers: Sequence[HardwareGraph],
    job_file: JobFile,
    gpu_policy: str = "preserve",
    node_policy: str = "first-fit",
    model: EffectiveBandwidthModel = PAPER_MODEL,
    scheduling: str = "fifo",
    engine: str = "cached",
    scan_cache=None,
    core: str = "columnar",
    scan_spill=None,
    dynamics=None,
) -> MultiServerSimulator:
    """Simulate a trace on a cluster; returns the simulator (log inside).

    ``engine`` selects the GPU policies' scan engine: ``"cached"``
    (default, fleet-shared content-addressed scan memoization),
    ``"batch"`` or ``"scalar"`` — all bit-identical, which is what the
    fleet-scale benchmark's cached-vs-batch gate verifies end to end.
    ``scan_cache`` optionally supplies the cached engine's backing
    store, letting a caller keep it warm across repeated replays of
    the same fleet (cache keys are content-addressed, so reuse can
    only ever change speed, not results).  ``core`` selects the
    simulation core: ``"columnar"`` (default, the struct-of-arrays hot
    path) or ``"object"`` (the historical object-per-event loop, kept
    as the bit-identical baseline the fleet benchmark's columnar gate
    measures against).  ``scan_spill`` optionally attaches a persistent
    scan-cache tier (:class:`repro.experiments.spill.ScanSpillStore`):
    the shared cache is warm-started from it at construction, and
    ``sim.scheduler.spill_scan_cache()`` writes it back.  ``dynamics``
    optionally injects a seeded fleet-chaos axis
    (:class:`repro.scenarios.dynamics.DynamicsSpec`): failures,
    autoscale and preemption as first-class events (FIFO only).
    """
    sim = MultiServerSimulator(
        servers,
        gpu_policy,
        node_policy,
        model,
        scheduling,
        engine=engine,
        scan_cache=scan_cache,
        core=core,
        scan_spill=scan_spill,
        dynamics=dynamics,
    )
    sim.run(job_file)
    return sim
