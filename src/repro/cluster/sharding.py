"""Sharded fleet replay: scheduler shards in worker processes.

The single-process fleet replay (:mod:`repro.cluster.simulator`) runs
one :class:`~repro.cluster.scheduler.MultiServerScheduler` over the
whole fleet — fine at 64 servers, but placement scans serialize on one
core long before the ROADMAP's O(1k–10k)-server / million-job target.
This module partitions a :class:`~repro.scenarios.fleet.FleetSpec`
into ``K`` contiguous shards, each owning a private
:class:`MultiServerScheduler` inside a dedicated worker process, and
recovers the *exact* single-scheduler replay from their composition:

**Shared read-only topology.**  Each distinct wiring's
:class:`~repro.topology.linktable.LinkTable` dense arrays (link-class
codes, bandwidths, channel counts, per-channel bandwidths, NVLink
flags) are published once through :mod:`multiprocessing.shared_memory`
(:class:`SharedLinkTableView`); every shard maps the one copy and
rehydrates its tables via :meth:`LinkTable.from_arrays` instead of
unpickling per-task duplicates.  The same segment carries a mutable
tail — per-server free-set bitmasks and free counts — that shards
refresh at batch boundaries, giving the parent (and crash forensics) a
fleet-wide state snapshot without a round trip.

**Routing by bucket summaries.**  The parent keeps one *mirror*
:class:`~repro.cluster.scheduler.CandidateServerIndex` per shard,
updated from the placement/release deltas it itself dispatches, so
inter-shard routing — *which shard, which server* — is decided locally
in O(shards · buckets) with zero IPC.  Every shard reply piggybacks its
index's :meth:`~repro.cluster.scheduler.CandidateServerIndex.bucket_summary`
(``max_free`` + free-count histogram); the parent compares it against
the mirror's own summary on every flush, so a routing divergence is
detected at the batch where it happened, not at the end-of-run digest.

**Batched dispatch.**  Arrivals drain from the columnar
:class:`~repro.sim.engine.EventEngine` and buffer into per-shard
operation lists; a batch flushes only when the next event could causally
depend on an undispatched completion (the *optimistic horizon* — see
:class:`ShardedFleetSimulator`).  One IPC round trip then carries many
placements/releases, and the replies carry everything the parent needs
to schedule completions bit-identically.

**Determinism contract.**  A sharded replay is byte-identical to
:func:`repro.cluster.simulator.run_cluster` on the same fleet and trace
— for any shard count, including 1 — under the conditions the
constructor enforces: FIFO discipline, a node policy whose winner is a
pure function of per-server free counts (``first-fit`` / ``pack`` /
``spread``; ``best-score`` is rejected), and registered GPU policies,
which never decline a count-feasible server.  The mirror then predicts
the exact server every placement lands on; each shard verifies the
prediction and raises on the first mismatch.

**Fleet dynamics.**  Seeded chaos scenarios
(:class:`~repro.scenarios.dynamics.DynamicsSpec` — failure/repair,
autoscale grow/shrink, preemption) replay byte-identically too: the
parent mirrors every server's lifecycle status, flushes all buffered
work before each mutation, and applies the same mirror delta the shard
applies to its own index (deactivate on fail/drain, activate on
repair, append-on-last-shard for autoscale growth, so global indices
stay contiguous).
"""

from __future__ import annotations

import atexit
import gc
import itertools
import multiprocessing
import os
from bisect import bisect_right
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import (
    Any,
    Deque,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..comm.microbench import peak_effective_bandwidth, release_graph_memo
from ..scenarios.fleet import FleetSpec
from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..scoring.memo import ScanCache
from ..sim.engine import EventEngine, FLEET_PRIORITY
from ..sim.records import SimulationLog
from ..topology.builders import by_name
from ..topology.hardware import HardwareGraph
from ..topology.linktable import LinkTable
from ..workloads.exectime import execution_time
from ..workloads.jobs import Job, JobFile
from .scheduler import CandidateServerIndex, MultiServerScheduler

_ARRIVAL = "arrival"
_COMPLETION = "completion"
_FLEET = "fleet"

#: Node policies whose winner is a pure function of per-server free
#: counts — the ones the parent-side mirror can route exactly.
#: ``best-score`` inspects intra-server wiring speculatively on every
#: feasible server and is rejected by the sharded scheduler.
SHARDABLE_NODE_POLICIES = ("first-fit", "pack", "spread")


def _mp_context():
    """The ``fork`` multiprocessing context when the platform has it.

    Same rationale as the sweep runner's pool: forked shard workers
    inherit the parent's imported modules (numpy, the topology
    builders) instead of re-importing, and — crucially for fleets —
    inherit nothing mutable they use, since all shard state is built
    inside the worker from the picklable :class:`_ShardConfig`.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return None


# --------------------------------------------------------------------- #
# shared-memory topology + fleet-state segment
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class WiringBlock:
    """Offsets of one distinct wiring's dense arrays inside the segment."""

    topology_hash: str
    gpus: Tuple[int, ...]
    #: Byte offsets of (codes, bandwidths, channels, per_channel, nvlink).
    offsets: Tuple[int, int, int, int, int]

    @property
    def n(self) -> int:
        """GPUs per server of this wiring."""
        return len(self.gpus)


@dataclass(frozen=True)
class SharedFleetManifest:
    """Everything needed to attach the fleet's shared-memory segment.

    Picklable by construction — it rides inside each shard's
    :class:`_ShardConfig` — and self-describing: the segment name, the
    per-wiring array offsets, and the offsets of the mutable per-server
    free-bitmask / free-count tail.
    """

    segment: str
    num_servers: int
    wirings: Tuple[WiringBlock, ...]
    bitmask_offset: int
    counts_offset: int
    size: int


#: Views that still own or map a live segment, swept at interpreter
#: exit so a crashed replay never leaks ``/dev/shm`` entries.
_LIVE_VIEWS: List["SharedLinkTableView"] = []
_SWEEP_REGISTERED = False


def _register_view(view: "SharedLinkTableView") -> None:
    """Track ``view`` for the atexit sweep (idempotent registration)."""
    global _SWEEP_REGISTERED
    _LIVE_VIEWS.append(view)
    if not _SWEEP_REGISTERED:
        atexit.register(_atexit_sweep)
        _SWEEP_REGISTERED = True


def _atexit_sweep() -> None:
    """Close (and, for owners, unlink) every still-live segment view.

    Registered once, runs at interpreter exit.  Normal lifecycles
    (context manager, :meth:`ShardedFleetScheduler.close`) empty
    :data:`_LIVE_VIEWS` long before this fires; the sweep is the
    backstop for error paths that never reached ``close()``.
    """
    for view in list(_LIVE_VIEWS):
        try:
            view.unlink()
            view.close()
        except Exception:  # pragma: no cover - best-effort cleanup
            pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without registering it with the resource tracker.

    :class:`~multiprocessing.shared_memory.SharedMemory` registers every
    attach unconditionally; patching the tracker's ``register`` to a
    no-op for the constructor call keeps non-owning processes out of
    the tracker entirely (single-threaded attach paths only, which is
    all this module has).
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - always present on POSIX
        return shared_memory.SharedMemory(name=name)
    original = resource_tracker.register
    resource_tracker.register = lambda *_args, **_kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedLinkTableView:
    """One fleet's shared-memory segment: link tables + free state.

    Layout (all 8-byte aligned)::

        for each distinct wiring, sorted by topology hash:
            codes        int64[n²]     Eq. 2 link-class codes
            bandwidths   float64[n²]   pairwise peak bandwidths
            channels     int64[n²]     NVLink channel counts
            per_channel  float64[n²]   per-channel bandwidths
            nvlink       uint8[n²]     direct-NVLink flags (padded)
        free_bitmask     uint64[servers]  per-server free-set bitmask
        free_counts      int64[servers]   per-server free-GPU counts

    The wiring blocks are immutable after :meth:`publish`; the two
    trailing arrays are the mutable fleet-state tail each shard
    refreshes for its own server slots at batch boundaries.  Exactly
    one view — the publisher's — owns the segment and may
    :meth:`unlink` it; attached views only :meth:`close` their mapping.
    The class is a context manager and every instance is registered for
    the module's atexit sweep, so error paths cannot leak segments.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: SharedFleetManifest,
        owner: bool,
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.manifest = manifest
        self.owner = owner
        self._unlinked = False
        _register_view(self)

    # -------------------------------------------------------------- #
    @classmethod
    def publish(
        cls, servers: Sequence[HardwareGraph]
    ) -> "SharedLinkTableView":
        """Create and fill a segment for ``servers``; returns the owner view.

        One wiring block per distinct :attr:`topology_hash` (a
        1024-server fleet of three server models publishes three
        blocks), plus the zero-initialised mutable tail sized to the
        fleet.
        """
        tables: Dict[str, LinkTable] = {}
        for hw in servers:
            tables.setdefault(hw.topology_hash, hw.link_table)
        wirings: List[WiringBlock] = []
        offset = 0
        for wiring_hash in sorted(tables):
            table = tables[wiring_hash]
            n2 = table.n * table.n
            offsets = (
                offset,
                offset + 8 * n2,
                offset + 16 * n2,
                offset + 24 * n2,
                offset + 32 * n2,
            )
            offset += 32 * n2 + 8 * ((n2 + 7) // 8)
            wirings.append(
                WiringBlock(
                    topology_hash=wiring_hash,
                    gpus=table.gpus,
                    offsets=offsets,
                )
            )
        num_servers = len(servers)
        bitmask_offset = offset
        counts_offset = offset + 8 * num_servers
        size = max(counts_offset + 8 * num_servers, 8)
        shm = shared_memory.SharedMemory(create=True, size=size)
        manifest = SharedFleetManifest(
            segment=shm.name,
            num_servers=num_servers,
            wirings=tuple(wirings),
            bitmask_offset=bitmask_offset,
            counts_offset=counts_offset,
            size=size,
        )
        view = cls(shm, manifest, owner=True)
        try:
            for block in wirings:
                table = tables[block.topology_hash]
                n2 = block.n * block.n
                view._array(block.offsets[0], np.int64, n2)[:] = table.codes
                view._array(block.offsets[1], np.float64, n2)[:] = (
                    table.bandwidths
                )
                view._array(block.offsets[2], np.int64, n2)[:] = (
                    table.channels
                )
                view._array(block.offsets[3], np.float64, n2)[:] = (
                    table.per_channel
                )
                view._array(block.offsets[4], np.uint8, n2)[:] = np.fromiter(
                    table.nvlink, dtype=np.uint8, count=n2
                )
            view.free_bitmask[:] = 0
            view.free_counts[:] = 0
        except BaseException:
            view.close()
            view.unlink()
            raise
        return view

    @classmethod
    def attach(cls, manifest: SharedFleetManifest) -> "SharedLinkTableView":
        """Map an already-published segment (shard-worker side).

        The attaching process's :mod:`multiprocessing.resource_tracker`
        would otherwise adopt the segment and unlink it when *this*
        process exits — yanking it out from under the parent and every
        sibling shard (forked workers even share the parent's tracker,
        so an unregister-after-attach would cancel the *owner's*
        registration).  Registration is therefore suppressed for the
        duration of the attach; ownership, tracking and unlink
        responsibility all stay with the publisher.
        """
        shm = _attach_untracked(manifest.segment)
        return cls(shm, manifest, owner=False)

    # -------------------------------------------------------------- #
    def _array(self, offset: int, dtype, count: int) -> np.ndarray:
        """A typed view of ``count`` items at ``offset`` into the segment."""
        if self._shm is None:
            raise ValueError("shared fleet segment is closed")
        return np.frombuffer(
            self._shm.buf, dtype=dtype, count=count, offset=offset
        )

    @property
    def free_bitmask(self) -> np.ndarray:
        """Mutable per-server free-set bitmasks (uint64, fleet-indexed)."""
        return self._array(
            self.manifest.bitmask_offset, np.uint64, self.manifest.num_servers
        )

    @property
    def free_counts(self) -> np.ndarray:
        """Mutable per-server free-GPU counts (int64, fleet-indexed)."""
        return self._array(
            self.manifest.counts_offset, np.int64, self.manifest.num_servers
        )

    def tables(self) -> Dict[str, LinkTable]:
        """Rehydrate one :class:`LinkTable` per published wiring.

        The returned tables' dense hot-path arrays are zero-copy views
        of the mapped segment (see :meth:`LinkTable.from_arrays`), so
        they must not outlive this view's mapping.
        """
        out: Dict[str, LinkTable] = {}
        for block in self.manifest.wirings:
            n2 = block.n * block.n
            out[block.topology_hash] = LinkTable.from_arrays(
                block.gpus,
                self._array(block.offsets[0], np.int64, n2),
                self._array(block.offsets[1], np.float64, n2),
                self._array(block.offsets[2], np.int64, n2),
                self._array(block.offsets[3], np.float64, n2),
                self._array(block.offsets[4], np.uint8, n2),
            )
        return out

    # -------------------------------------------------------------- #
    def close(self) -> None:
        """Drop this process's mapping (idempotent).

        Callers must release every array handed out by :meth:`tables` /
        :attr:`free_bitmask` / :attr:`free_counts` first — a mapping
        with live buffer exports cannot be unmapped (shard runtimes do
        this by dropping their scheduler before closing).
        """
        shm, self._shm = self._shm, None
        if shm is not None:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - live exports remain
                # Leave the mapping to process exit; the segment itself
                # is still unlinked by the owner, so nothing leaks.
                pass
        if self in _LIVE_VIEWS and (not self.owner or self._unlinked):
            _LIVE_VIEWS.remove(self)

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent, no-op otherwise)."""
        if not self.owner or self._unlinked:
            return
        self._unlinked = True
        try:
            if self._shm is not None:
                self._shm.unlink()
            else:
                _attach_untracked(self.manifest.segment).unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        if self in _LIVE_VIEWS:
            _LIVE_VIEWS.remove(self)

    def __enter__(self) -> "SharedLinkTableView":
        """Context-manager entry: the view itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Guaranteed cleanup: unlink if owner, then close the mapping."""
        self.unlink()
        self.close()


# --------------------------------------------------------------------- #
# shard workers (module-level: picklable by ProcessPoolExecutor)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ShardConfig:
    """Everything a worker needs to build one shard's runtime."""

    token: int
    shard_id: int
    start: int  # global index of this shard's first server
    topologies: Tuple[str, ...]  # per-server names, shard-local order
    gpu_policy: str
    node_policy: str
    model: EffectiveBandwidthModel
    engine: str
    scan_spill_root: Optional[str]
    manifest: Optional[SharedFleetManifest]


#: Per-process shard registry, keyed ``(token, shard_id)``.  The token
#: (a parent-side counter) isolates schedulers from each other in
#: inline mode and from stale fork-inherited entries in process mode.
_SHARDS: Dict[Tuple[int, int], "_ShardRuntime"] = {}

#: Monotone scheduler tokens (parent side).
_TOKENS = itertools.count(1)


class _ShardRuntime:
    """One shard's in-worker state: scheduler, memos, shared-state slots.

    Mirrors the arithmetic of :class:`repro.sim.core.SimulationCore`
    exactly — the measured-bandwidth memo keyed by ``(topology_hash,
    gpus)`` and the execution-time memo keyed by ``(workload, n,
    measured)`` reproduce ``try_start``'s floats bit-for-bit — so the
    reply rows the parent logs are the rows the single-process replay
    would have logged.
    """

    def __init__(self, cfg: _ShardConfig) -> None:
        self.cfg = cfg
        self.view: Optional[SharedLinkTableView] = None
        shared_tables: Dict[str, LinkTable] = {}
        if cfg.manifest is not None:
            self.view = SharedLinkTableView.attach(cfg.manifest)
            shared_tables = self.view.tables()
        # One graph per distinct name, link tables shared by wiring
        # hash — FleetSpec.build()'s sharing, sourced from shared
        # memory when published.
        by_topology: Dict[str, HardwareGraph] = {}
        table_by_hash: Dict[str, LinkTable] = dict(shared_tables)
        servers: List[HardwareGraph] = []
        for name in cfg.topologies:
            hardware = by_topology.get(name)
            if hardware is None:
                hardware = by_name(name)
                wiring = hardware.topology_hash
                table = table_by_hash.get(wiring)
                if table is None:
                    table_by_hash[wiring] = hardware.link_table
                else:
                    hardware.adopt_link_table(table)
                by_topology[name] = hardware
            servers.append(hardware)
        spill = None
        if cfg.scan_spill_root:
            # Lazy import keeps the cluster layer's dependency on the
            # experiments layer soft (same duck-typing as the scheduler).
            from ..experiments.spill import ScanSpillStore

            spill = ScanSpillStore(cfg.scan_spill_root)
        self.scheduler = MultiServerScheduler(
            servers,
            gpu_policy=cfg.gpu_policy,
            node_policy=cfg.node_policy,
            model=cfg.model,
            engine=cfg.engine,
            scan_cache=ScanCache() if cfg.engine == "cached" else None,
            annotate_memo="split",
            scan_spill=spill,
            fast_paths=True,
        )
        self._mbw_memo: Dict[Tuple[str, Tuple[int, ...]], float] = {}
        self._mbw_lookups = 0
        self._mbw_hits = 0
        self._exec_cache: Dict[Tuple[str, int, float], float] = {}
        self.publish_state(range(len(servers)))

    # -------------------------------------------------------------- #
    def publish_state(self, locals_touched) -> None:
        """Write touched servers' free bitmask/count into the segment.

        Servers grown past the published fleet have no slot in the
        (fixed-size) segment and are skipped; the parent mirrors carry
        their state instead.
        """
        if self.view is None:
            return
        start = self.cfg.start
        limit = self.view.manifest.num_servers
        bitmask = self.view.free_bitmask
        counts = self.view.free_counts
        engines = self.scheduler.engines
        for local in locals_touched:
            slot = start + local
            if slot >= limit:
                continue
            state = engines[local].state
            bitmask[slot] = state.free_bitmask
            counts[slot] = state.num_free

    def _measured_bw(self, hardware: HardwareGraph, gpus: Tuple[int, ...]) -> float:
        """Memoised microbenchmark bandwidth (same keying as the core)."""
        key = (hardware.topology_hash, gpus)
        self._mbw_lookups += 1
        measured = self._mbw_memo.get(key)
        if measured is None:
            measured = peak_effective_bandwidth(hardware, gpus)
            self._mbw_memo[key] = measured
        else:
            self._mbw_hits += 1
        return measured

    def exec_batch(
        self, ops: Sequence[Tuple]
    ) -> Tuple[List[Tuple], Tuple[int, Tuple[int, ...]]]:
        """Apply one dispatch batch in order; reply per placement.

        ``ops`` entries are ``("p", job, expected_local)`` placements or
        ``("r", job_id)`` releases, in the parent's dispatch order for
        this shard.  Each placement reply is ``(local_server, gpus,
        agg_bw, effective_bw, measured_bw, exec_time)``.  The return
        value piggybacks the shard index's bucket summary so the parent
        verifies its routing mirror on every flush without an extra
        round trip.

        Fleet-dynamics mutations arrive as single-op batches (the
        parent flushes all buffered work first): ``("f", local)`` fails
        a server (reply ``("f", casualty_ids)`` in allocation order),
        ``("u", local)`` repairs one (reply ``("u", ok, free)``),
        ``("d", local)`` drains one (reply ``("d", ok)``), and
        ``("a", topology)`` grows the shard by one server (reply
        ``("a", local, capacity, free)``).
        """
        scheduler = self.scheduler
        replies: List[Tuple] = []
        touched = set()
        for op in ops:
            if op[0] == "p":
                _, job, expected = op
                placement = scheduler.try_place(job.request())
                if placement is None:
                    raise RuntimeError(
                        f"shard {self.cfg.shard_id}: policy declined "
                        f"count-feasible job {job.job_id!r} — sharded "
                        "routing requires policies that commit on any "
                        "count-feasible server"
                    )
                local = placement.server_index
                if local != expected:
                    raise RuntimeError(
                        f"shard {self.cfg.shard_id}: job {job.job_id!r} "
                        f"landed on local server {local}, parent mirror "
                        f"predicted {expected}"
                    )
                touched.add(local)
                gpus = placement.gpus
                n = len(gpus)
                if n == 1:
                    measured = 0.0
                else:
                    measured = self._measured_bw(
                        scheduler.hardware_for(local), gpus
                    )
                key = (job.workload, n, measured)
                exec_time = self._exec_cache.get(key)
                if exec_time is None:
                    exec_time = execution_time(
                        job.workload_spec(),
                        n,
                        measured if n > 1 else float("inf"),
                    )
                    self._exec_cache[key] = exec_time
                scores = placement.allocation.scores
                replies.append(
                    (
                        local,
                        gpus,
                        scores.get("agg_bw", 0.0),
                        scores.get("effective_bw", 0.0),
                        measured,
                        exec_time,
                    )
                )
            elif op[0] == "r":
                local, _freed = scheduler.release(op[1])
                touched.add(local)
            elif op[0] == "f":
                local = op[1]
                casualties = scheduler.fail_server(local)
                touched.add(local)
                replies.append(("f", tuple(casualties)))
            elif op[0] == "u":
                local = op[1]
                ok = scheduler.repair_server(local)
                touched.add(local)
                replies.append(
                    ("u", ok, scheduler.engines[local].state.num_free)
                )
            elif op[0] == "d":
                replies.append(("d", scheduler.drain_server(op[1])))
            elif op[0] == "a":
                local = scheduler.grow_server(op[1])
                touched.add(local)
                engine = scheduler.engines[local]
                replies.append(
                    ("a", local, engine.hardware.num_gpus,
                     engine.state.num_free)
                )
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown shard op {op[0]!r}")
        self.publish_state(touched)
        return replies, scheduler.candidate_index.bucket_summary()

    def stats(self) -> Dict[str, float]:
        """This shard's raw cache counters (scan + measured-bandwidth)."""
        out: Dict[str, float] = {
            "measured_bw_lookups": self._mbw_lookups,
            "measured_bw_hits": self._mbw_hits,
        }
        scan = self.scheduler.scan_cache_stats()
        if scan is not None:
            counters = scan.as_dict()
            counters.pop("hit_rate", None)
            for key, value in counters.items():
                out[f"scan_{key}"] = value
        return out

    def close(self) -> None:
        """Release the shard's shared-memory mapping (worker side).

        Every holder of the shm-backed link-table views must go before
        the mapping can be unmapped: the scheduler (whose graphs cache
        the tables), the process-wide ring-bandwidth memo (whose keys
        pin the graphs), and any reference cycles a GC pass collects.
        """
        view, self.view = self.view, None
        if view is None:
            return
        self.scheduler = None  # type: ignore[assignment]
        self._mbw_memo.clear()
        release_graph_memo()
        gc.collect()
        view.close()


def _shard_init(cfg: _ShardConfig) -> Tuple[int, Tuple[int, Tuple[int, ...]]]:
    """Build (or rebuild) one shard runtime in the calling process.

    Returns ``(pid, bucket summary)`` — the pid feeds tests and crash
    diagnostics, the summary lets the parent cross-check its freshly
    built mirror before any job is dispatched.
    """
    runtime = _ShardRuntime(cfg)
    stale = _SHARDS.pop((cfg.token, cfg.shard_id), None)
    if stale is not None:  # pragma: no cover - re-init path
        stale.close()
    _SHARDS[(cfg.token, cfg.shard_id)] = runtime
    return os.getpid(), runtime.scheduler.candidate_index.bucket_summary()


def _shard_exec(token: int, shard_id: int, ops: Sequence[Tuple]):
    """Run one dispatch batch on the registered shard runtime."""
    return _SHARDS[(token, shard_id)].exec_batch(ops)


def _shard_stats(token: int, shard_id: int) -> Dict[str, float]:
    """Fetch one shard's raw cache counters."""
    return _SHARDS[(token, shard_id)].stats()


def _shard_free_counts(token: int, shard_id: int) -> Tuple[int, ...]:
    """One shard's actual per-server free counts (resync source)."""
    return _SHARDS[(token, shard_id)].scheduler.free_gpu_counts()


def _shard_check(token: int, shard_id: int):
    """Deep-check one shard's index; returns its free counts + summary."""
    runtime = _SHARDS[(token, shard_id)]
    runtime.scheduler.check_index()
    return (
        runtime.scheduler.free_gpu_counts(),
        runtime.scheduler.candidate_index.bucket_summary(),
    )


def _shard_reset(token: int, shard_id: int) -> Tuple[int, Tuple[int, ...]]:
    """Release every job on one shard; returns the fresh bucket summary."""
    runtime = _SHARDS[(token, shard_id)]
    runtime.scheduler.reset()
    runtime.publish_state(range(runtime.scheduler.num_servers))
    return runtime.scheduler.candidate_index.bucket_summary()


def _shard_spill(token: int, shard_id: int) -> int:
    """Spill one shard's scan cache to the persistent tier."""
    return _SHARDS[(token, shard_id)].scheduler.spill_scan_cache()


def _shard_pid(token: int, shard_id: int) -> int:
    """The pid hosting one shard (process-affinity regression probe)."""
    _ = _SHARDS[(token, shard_id)]
    return os.getpid()


def _shard_drop(token: int, shard_id: int) -> bool:
    """Tear down one shard runtime (worker side); True if it existed."""
    runtime = _SHARDS.pop((token, shard_id), None)
    if runtime is None:
        return False
    runtime.close()
    return True


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardPlan:
    """A contiguous partition of server indices into shards.

    ``boundaries`` has ``K + 1`` entries: shard ``s`` owns global
    servers ``boundaries[s] .. boundaries[s+1] - 1``.  Contiguity in
    ascending index order is what makes global tie-breaking (lowest
    index wins) decomposable into ``(shard, local index)`` — the
    property every routing rule below leans on.
    """

    boundaries: Tuple[int, ...]

    def __post_init__(self) -> None:
        """Validate strict monotonicity and a zero-based first shard."""
        b = tuple(int(x) for x in self.boundaries)
        object.__setattr__(self, "boundaries", b)
        if len(b) < 2 or b[0] != 0:
            raise ValueError(f"bad shard boundaries {b}")
        for lo, hi in zip(b, b[1:]):
            if hi <= lo:
                raise ValueError(
                    f"shard boundaries must be strictly increasing, got {b}"
                )

    @classmethod
    def even(cls, num_servers: int, shards: int) -> "ShardPlan":
        """Split ``num_servers`` into ``shards`` near-equal contiguous runs."""
        if shards < 1:
            raise ValueError("need at least one shard")
        if shards > num_servers:
            raise ValueError(
                f"{shards} shards for {num_servers} servers — shards "
                "cannot be empty"
            )
        base, extra = divmod(num_servers, shards)
        boundaries = [0]
        for s in range(shards):
            boundaries.append(boundaries[-1] + base + (1 if s < extra else 0))
        return cls(boundaries=tuple(boundaries))

    @property
    def num_shards(self) -> int:
        """How many shards the plan defines."""
        return len(self.boundaries) - 1

    @property
    def num_servers(self) -> int:
        """Total servers covered by the plan."""
        return self.boundaries[-1]

    def start(self, shard: int) -> int:
        """Global index of ``shard``'s first server."""
        return self.boundaries[shard]

    def size(self, shard: int) -> int:
        """How many servers ``shard`` owns."""
        return self.boundaries[shard + 1] - self.boundaries[shard]


def aggregate_cache_stats(
    per_shard: Sequence[Mapping[str, float]]
) -> Dict[str, float]:
    """Sum per-shard cache counters into one fleet-wide stats dict.

    Counter keys are summed; the derived ``scan_hit_rate`` is
    recomputed from the summed lookups/hits (a mean of per-shard rates
    would weight idle shards equally with busy ones).
    """
    totals: Dict[str, float] = {}
    for stats in per_shard:
        for key, value in stats.items():
            if key == "scan_hit_rate":
                continue
            totals[key] = totals.get(key, 0) + value
    if "scan_lookups" in totals:
        lookups = totals["scan_lookups"]
        totals["scan_hit_rate"] = (
            totals.get("scan_hits", 0) / lookups if lookups else 0.0
        )
    return totals


class ShardedFleetScheduler:
    """K scheduler shards in worker processes behind one routing front.

    The mechanical layer of the sharded replay: owns the shard plan,
    the worker pools (one single-worker
    :class:`~concurrent.futures.ProcessPoolExecutor` per shard, so a
    shard's scheduler — and its warm scan/decision/bandwidth memos —
    stays pinned to one process for the scheduler's whole lifetime),
    the shared-memory segment, and the per-shard routing mirrors.
    :class:`ShardedFleetSimulator` drives it with route / dispatch /
    flush calls; everything event-loop-shaped lives there.

    Parameters
    ----------
    fleet:
        The declarative fleet description to partition.
    shards:
        Shard count for an even contiguous split (ignored when
        ``boundaries`` is given).
    boundaries:
        Explicit :class:`ShardPlan` boundaries (``K + 1`` ints).
    gpu_policy / node_policy / model / engine:
        Per-shard scheduler construction knobs, exactly as
        :func:`repro.cluster.simulator.run_cluster` takes them.
        ``node_policy`` must be one of
        :data:`SHARDABLE_NODE_POLICIES`.
    mode:
        ``"process"`` (default) runs each shard in a worker process;
        ``"inline"`` runs every shard in the calling process through
        the same code path — no IPC, same results, the test suite's
        fast mode.
    scan_spill_root:
        Optional persistent scan-tier directory handed to every shard
        (each shard loads/spills the wirings it owns).
    use_shared_memory:
        Publish link tables + fleet state through shared memory.
        Defaults to ``True`` in process mode, ``False`` inline (where
        the tables are already in-process).
    """

    def __init__(
        self,
        fleet: FleetSpec,
        shards: int = 1,
        *,
        boundaries: Optional[Sequence[int]] = None,
        gpu_policy: str = "preserve",
        node_policy: str = "first-fit",
        model: EffectiveBandwidthModel = PAPER_MODEL,
        engine: str = "cached",
        mode: str = "process",
        scan_spill_root: Optional[str] = None,
        use_shared_memory: Optional[bool] = None,
    ) -> None:
        if node_policy not in SHARDABLE_NODE_POLICIES:
            raise ValueError(
                f"node policy {node_policy!r} cannot be sharded; the "
                "routing mirror needs a winner that is a pure function "
                f"of free counts (one of {SHARDABLE_NODE_POLICIES})"
            )
        if mode not in ("process", "inline"):
            raise ValueError(f"mode must be 'process' or 'inline', got {mode!r}")
        self.fleet = fleet
        self.gpu_policy = gpu_policy
        self.node_policy = node_policy
        self.model = model
        self.engine = engine
        self.mode = mode
        if boundaries is not None:
            self.plan = ShardPlan(boundaries=tuple(boundaries))
        else:
            self.plan = ShardPlan.even(fleet.num_servers, shards)
        if self.plan.num_servers != fleet.num_servers:
            raise ValueError(
                f"shard plan covers {self.plan.num_servers} servers, "
                f"fleet has {fleet.num_servers}"
            )
        servers = fleet.build()
        self._capacities = [hw.num_gpus for hw in servers]
        self._max_capacity = max(self._capacities)
        # Fleet-dynamics bookkeeping: the parent tracks every server's
        # lifecycle status ("up" / "failed" / "drained") in lockstep
        # with the shard schedulers, so guards and routing never need a
        # round trip.  ``_initial_servers`` is the reset() watermark —
        # autoscale-grown servers beyond it are dropped on reset.
        self._status: List[str] = ["up"] * len(servers)
        self._initial_servers = len(servers)
        names = fleet.topologies
        if use_shared_memory is None:
            use_shared_memory = mode == "process"
        self._view: Optional[SharedLinkTableView] = None
        manifest: Optional[SharedFleetManifest] = None
        if use_shared_memory:
            self._view = SharedLinkTableView.publish(servers)
            manifest = self._view.manifest
        self._token = next(_TOKENS)
        self._closed = False
        K = self.plan.num_shards
        self._pools: List[Optional[ProcessPoolExecutor]] = [None] * K
        try:
            if mode == "process":
                ctx = _mp_context()
                kwargs = {"mp_context": ctx} if ctx is not None else {}
                self._pools = [
                    ProcessPoolExecutor(max_workers=1, **kwargs)
                    for _ in range(K)
                ]
            self._mirrors: List[CandidateServerIndex] = []
            init_summaries = []
            configs = []
            for s in range(K):
                lo, hi = self.plan.boundaries[s], self.plan.boundaries[s + 1]
                configs.append(
                    _ShardConfig(
                        token=self._token,
                        shard_id=s,
                        start=lo,
                        topologies=tuple(names[lo:hi]),
                        gpu_policy=gpu_policy,
                        node_policy=node_policy,
                        model=model,
                        engine=engine,
                        scan_spill_root=scan_spill_root,
                        manifest=manifest,
                    )
                )
                caps = self._capacities[lo:hi]
                self._mirrors.append(
                    CandidateServerIndex(list(caps), capacities=list(caps))
                )
            for s, (_pid, summary) in enumerate(
                self._call_all(_shard_init, [(cfg,) for cfg in configs])
            ):
                init_summaries.append(summary)
                self._verify_summary(s, summary)
            # Per-shard dispatch state: op lists and the globally
            # ordered pending-placement ledger flush() replies against.
            self._ops: List[List[Tuple]] = [[] for _ in range(K)]
            self._pending_places: List[Tuple[Job, int, int, float]] = []
        except BaseException:
            self.close()
            raise

    # -------------------------------------------------------------- #
    # worker invocation
    # -------------------------------------------------------------- #
    def _call_all(self, fn, arglists: Sequence[Tuple]) -> List[Any]:
        """Run ``fn`` once per shard (parallel in process mode)."""
        if self.mode == "inline":
            return [fn(*args) for args in arglists]
        futures = [
            self._pools[s].submit(fn, *args)
            for s, args in enumerate(arglists)
        ]
        return [f.result() for f in futures]

    def _call_one(self, shard: int, fn, *args) -> Any:
        """Run ``fn`` on one shard's worker."""
        if self.mode == "inline":
            return fn(*args)
        return self._pools[shard].submit(fn, *args).result()

    # -------------------------------------------------------------- #
    # routing (parent-local, zero IPC)
    # -------------------------------------------------------------- #
    @property
    def num_shards(self) -> int:
        """Shards in the plan."""
        return self.plan.num_shards

    @property
    def num_servers(self) -> int:
        """Servers in the fleet (including any autoscale-grown ones)."""
        return len(self._capacities)

    @property
    def max_capacity(self) -> int:
        """Largest server size (bounds :meth:`route` feasibility)."""
        return self._max_capacity

    @property
    def mirrors(self) -> Tuple[CandidateServerIndex, ...]:
        """The per-shard routing mirrors (read-only for callers)."""
        return tuple(self._mirrors)

    def max_free_count(self) -> int:
        """Largest per-server free count fleet-wide, O(shards)."""
        return max(m.max_free for m in self._mirrors)

    def route(self, num_gpus: int) -> Optional[Tuple[int, int]]:
        """``(shard, local server)`` the next placement will land on.

        Decided entirely from the mirrors, reproducing the global
        :class:`CandidateServerIndex` walk of the reference scheduler:

        * ``first-fit`` — lowest global index with enough free GPUs:
          first shard (ascending) whose ``max_free`` fits, then its
          lowest-index feasible server;
        * ``pack`` — global ``(free, index)`` minimum: each shard's
          pack winner, compared by ``(free, shard)``;
        * ``spread`` — global ``(-free, index)`` minimum, analogously.

        Returns ``None`` exactly when no server fits — the condition
        under which the reference ``try_place`` returns ``None`` (its
        policies never decline a count-feasible server).
        """
        if self.node_policy == "first-fit":
            for s, mirror in enumerate(self._mirrors):
                if mirror.max_free >= num_gpus:
                    return s, mirror.first(num_gpus)
            return None
        best: Optional[Tuple[int, int, int]] = None  # (rank, shard, local)
        for s, mirror in enumerate(self._mirrors):
            if mirror.max_free < num_gpus:
                continue
            local = next(mirror.candidates(num_gpus, self.node_policy))
            free = mirror.free_count(local)
            rank = free if self.node_policy == "pack" else -free
            if best is None or (rank, s) < (best[0], best[1]):
                best = (rank, s, local)
        if best is None:
            return None
        return best[1], best[2]

    # -------------------------------------------------------------- #
    # dispatch + flush
    # -------------------------------------------------------------- #
    @property
    def has_pending(self) -> bool:
        """Whether any dispatched operation awaits a flush."""
        return bool(self._pending_places) or any(self._ops)

    def dispatch_place(
        self, job: Job, shard: int, local: int, start_time: float
    ) -> int:
        """Buffer a placement on ``(shard, local)``; returns global index.

        The mirror commits immediately — the free count drops by the
        job's GPU count — so subsequent :meth:`route` calls in the same
        batch see the placement, exactly as the reference index does.
        """
        mirror = self._mirrors[shard]
        mirror.set_free(local, mirror.free_count(local) - job.num_gpus)
        self._ops[shard].append(("p", job, local))
        self._pending_places.append((job, shard, local, start_time))
        return self.plan.start(shard) + local

    def dispatch_release(
        self, job_id: Hashable, shard: int, local: int, num_gpus: int
    ) -> None:
        """Buffer a release; the mirror re-credits the GPUs immediately."""
        mirror = self._mirrors[shard]
        mirror.set_free(local, mirror.free_count(local) + num_gpus)
        self._ops[shard].append(("r", job_id))

    def _verify_summary(
        self, shard: int, summary: Tuple[int, Tuple[int, ...]]
    ) -> None:
        """Compare a shard's piggybacked summary against the mirror."""
        expected = self._mirrors[shard].bucket_summary()
        if summary != expected:
            raise RuntimeError(
                f"shard {shard} bucket summary {summary} diverged from "
                f"routing mirror {expected} — state desync"
            )

    # -------------------------------------------------------------- #
    # fleet dynamics (failure / repair / autoscale)
    # -------------------------------------------------------------- #
    def _locate(self, server: int) -> Tuple[int, int]:
        """``(shard, local)`` for a global index (grown servers → last)."""
        b = self.plan.boundaries
        if server >= b[-1]:
            shard = self.plan.num_shards - 1
        else:
            shard = bisect_right(b, server) - 1
        return shard, server - b[shard]

    def _fleet_op(self, shard: int, op: Tuple) -> Tuple[Tuple, Tuple]:
        """Apply one mutation shard-side; returns ``(reply, summary)``.

        Fleet mutations never share a batch with buffered placements or
        releases — the simulator flushes first — so the mirror update
        the caller performs is the only delta between the pre- and
        post-op bucket summaries.
        """
        if self.has_pending:
            raise RuntimeError("fleet mutations require a flushed scheduler")
        replies, summary = self._call_one(
            shard, _shard_exec, self._token, shard, [op]
        )
        return replies[0], summary

    def server_status(self, server: int) -> str:
        """One server's lifecycle status (``up``/``failed``/``drained``)."""
        return self._status[server]

    def max_active_capacity(self, exclude: Optional[int] = None) -> int:
        """Largest GPU capacity over up servers (optionally minus one).

        The parent-local deadlock guard, identical to
        :meth:`MultiServerScheduler.max_active_capacity` — statuses are
        mirrored in lockstep, so no round trip is needed.
        """
        best = 0
        for i, cap in enumerate(self._capacities):
            if i == exclude or self._status[i] != "up":
                continue
            if cap > best:
                best = cap
        return best

    def fail_server(self, server: int) -> List[Hashable]:
        """Take one (global) server down; casualties in allocation order.

        No-op (empty list) unless currently up.  The shard releases
        every allocation and deactivates the server; the mirror applies
        the same delta (full free count, out of every bucket) before
        the piggybacked summary is verified.
        """
        if self._status[server] != "up":
            return []
        shard, local = self._locate(server)
        reply, summary = self._fleet_op(shard, ("f", local))
        self._status[server] = "failed"
        mirror = self._mirrors[shard]
        mirror.set_free(local, self._capacities[server])
        mirror.deactivate(local)
        self._verify_summary(shard, summary)
        return list(reply[1])

    def repair_server(self, server: int) -> bool:
        """Bring a failed server back into routing; no-op unless failed."""
        if self._status[server] != "failed":
            return False
        shard, local = self._locate(server)
        reply, summary = self._fleet_op(shard, ("u", local))
        self._status[server] = "up"
        self._mirrors[shard].activate(local, free=reply[2])
        self._verify_summary(shard, summary)
        return True

    def drain_server(self, server: int) -> bool:
        """Autoscale shrink: stop routing to ``server``; jobs finish
        naturally (their releases land on the inactive mirror slot).
        No-op unless currently up."""
        if self._status[server] != "up":
            return False
        shard, local = self._locate(server)
        _reply, summary = self._fleet_op(shard, ("d", local))
        self._status[server] = "drained"
        self._mirrors[shard].deactivate(local)
        self._verify_summary(shard, summary)
        return True

    def grow_server(self, topology: str) -> int:
        """Autoscale grow: one new ``topology`` server; returns its index.

        Growth lands on the *last* shard, which keeps global indices
        contiguous — the new server's global index is the old fleet
        size, exactly where the single-process scheduler appends — so
        routing's lowest-index tie-break decomposes over shards
        unchanged.
        """
        shard = self.plan.num_shards - 1
        reply, summary = self._fleet_op(shard, ("a", topology))
        _tag, local, capacity, free = reply
        gidx = self.plan.start(shard) + local
        self._capacities.append(capacity)
        self._status.append("up")
        if capacity > self._max_capacity:
            self._max_capacity = capacity
        self._mirrors[shard].add_server(free, capacity)
        self._verify_summary(shard, summary)
        return gidx

    def flush(self) -> List[Tuple[Job, int, int, int, float, Tuple]]:
        """Execute every buffered batch; replies in global dispatch order.

        One round trip per shard with pending work, issued in parallel.
        Each returned entry is ``(job, shard, local, global_server,
        start_time, reply)`` with ``reply = (local, gpus, agg_bw,
        effective_bw, measured_bw, exec_time)``; entries follow the
        global dispatch order, which is what lets the simulator assign
        completion sequence numbers identically to the reference loop.
        Every shard's piggybacked bucket summary is verified against
        its mirror before replies are consumed.
        """
        active = [s for s in range(self.num_shards) if self._ops[s]]
        if not active:
            return []
        if self.mode == "inline":
            raw = [_shard_exec(self._token, s, self._ops[s]) for s in active]
        else:
            futures = [
                self._pools[s].submit(_shard_exec, self._token, s, self._ops[s])
                for s in active
            ]
            raw = [f.result() for f in futures]
        reply_iters = {}
        for s, (replies, summary) in zip(active, raw):
            self._verify_summary(s, summary)
            reply_iters[s] = iter(replies)
        out = []
        for job, shard, local, start_time in self._pending_places:
            reply = next(reply_iters[shard])
            gidx = self.plan.start(shard) + local
            out.append((job, shard, local, gidx, start_time, reply))
        for s in active:
            self._ops[s] = []
        self._pending_places = []
        return out

    # -------------------------------------------------------------- #
    # invariants, stats, lifecycle
    # -------------------------------------------------------------- #
    def check_mirror(self) -> None:
        """Assert mirrors == shard indexes == shared-memory state.

        Deep-checks every shard's own index (bucket structure, counts),
        then compares its actual free counts and summary against the
        parent mirror, and — when the segment is live — against the
        shared-memory free-count slots.  Only meaningful when nothing
        is pending (buffered ops make the mirror intentionally ahead).
        """
        if self.has_pending:
            raise RuntimeError("check_mirror() requires a flushed scheduler")
        results = self._call_all(
            _shard_check,
            [(self._token, s) for s in range(self.num_shards)],
        )
        for s, (free_counts, summary) in enumerate(results):
            self._verify_summary(s, summary)
            if tuple(free_counts) != self._mirrors[s].snapshot():
                raise RuntimeError(
                    f"shard {s} free counts {tuple(free_counts)} != mirror "
                    f"{self._mirrors[s].snapshot()}"
                )
            if self._view is not None:
                # Autoscale-grown servers have no slot in the published
                # segment; compare only the shard's original span.
                lo, hi = self.plan.boundaries[s], self.plan.boundaries[s + 1]
                shm_counts = tuple(
                    int(c) for c in self._view.free_counts[lo:hi]
                )
                if shm_counts != tuple(free_counts)[: hi - lo]:
                    raise RuntimeError(
                        f"shard {s} shared-memory counts {shm_counts} != "
                        f"actual {tuple(free_counts)}"
                    )

    def resync_mirror(self) -> None:
        """Rebuild every mirror from its shard's actual free counts.

        The recovery hook for out-of-band shard mutation (tests poking
        at a shard's engines); normal operation never needs it, exactly
        like :meth:`MultiServerScheduler.resync_index`.
        """
        if self.has_pending:
            raise RuntimeError("resync_mirror() requires a flushed scheduler")
        counts = self._call_all(
            _shard_free_counts,
            [(self._token, s) for s in range(self.num_shards)],
        )
        for s, free in enumerate(counts):
            lo, hi = self.plan.boundaries[s], self.plan.boundaries[s + 1]
            self._mirrors[s] = CandidateServerIndex(
                list(free), capacities=self._capacities[lo:hi]
            )

    def shard_stats(self) -> List[Dict[str, float]]:
        """Raw per-shard cache counters, shard-indexed."""
        return self._call_all(
            _shard_stats, [(self._token, s) for s in range(self.num_shards)]
        )

    def cache_stats(self) -> Dict[str, float]:
        """Fleet-wide aggregated cache counters (see per-shard breakdown)."""
        return aggregate_cache_stats(self.shard_stats())

    def spill_scan_cache(self) -> int:
        """Spill every shard's scan cache; returns total entries written.

        Shards spill one at a time: shards with identical wiring share
        partition files, and the tier's read-merge-write is only atomic
        against concurrent *writers of different partitions*, so a
        parallel spill could lose one shard's masks to another's.
        """
        return sum(
            self._call_one(s, _shard_spill, self._token, s)
            for s in range(self.num_shards)
        )

    def shard_pids(self) -> List[int]:
        """The pid hosting each shard (parent pid in inline mode)."""
        return self._call_all(
            _shard_pid, [(self._token, s) for s in range(self.num_shards)]
        )

    def reset(self) -> None:
        """Release every job on every shard and rebuild the mirrors.

        Also unwinds fleet dynamics: shard resets drop autoscale-grown
        servers and revive failed/drained ones, so the parent truncates
        its capacity/status ledgers back to the constructed fleet.
        """
        self._ops = [[] for _ in range(self.num_shards)]
        self._pending_places = []
        del self._capacities[self._initial_servers:]
        self._status = ["up"] * self._initial_servers
        self._max_capacity = max(self._capacities)
        summaries = self._call_all(
            _shard_reset, [(self._token, s) for s in range(self.num_shards)]
        )
        for s, summary in enumerate(summaries):
            lo, hi = self.plan.boundaries[s], self.plan.boundaries[s + 1]
            caps = self._capacities[lo:hi]
            self._mirrors[s] = CandidateServerIndex(
                list(caps), capacities=list(caps)
            )
            self._verify_summary(s, summary)

    def close(self) -> None:
        """Tear everything down: shard runtimes, pools, shared memory.

        Idempotent and exception-tolerant — a shard worker that already
        died (the crash-recovery tests kill one mid-replay) must not
        keep the segment pinned in ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        for s in range(self.num_shards):
            try:
                self._call_one(s, _shard_drop, self._token, s)
            except Exception:  # pragma: no cover - dead worker
                pass
        for pool in self._pools:
            if pool is not None:
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:  # pragma: no cover - defensive
                    pool.shutdown(wait=False)
        self._pools = [None] * self.num_shards
        if self._view is not None:
            self._view.unlink()
            self._view.close()
            self._view = None

    def __enter__(self) -> "ShardedFleetScheduler":
        """Context-manager entry: the scheduler itself."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Guaranteed teardown of workers and shared memory."""
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        """Best-effort teardown for schedulers never closed explicitly."""
        try:
            self.close()
        except Exception:
            pass


# --------------------------------------------------------------------- #
# the sharded replay loop
# --------------------------------------------------------------------- #
class ShardedFleetSimulator:
    """FIFO fleet replay over a :class:`ShardedFleetScheduler`.

    Reproduces the columnar core's fused FIFO loop
    (:class:`repro.sim.core.SimulationCore`) with dispatch *batched*
    behind an **optimistic horizon**:

    * every dispatched-but-unflushed placement contributes a lower
      bound on its completion time — ``start + execution_time(workload,
      n, ∞)``, valid because execution time is non-increasing in
      bandwidth;
    * events strictly before the minimum of those bounds are popped
      freely (they cannot causally depend on an undispatched
      completion); the first event at or past it forces a flush, which
      schedules the exact completions and resets the horizon.

    Flush timing is therefore pure performance; correctness needs only
    "never pop past the horizon with placements pending".  Sequence
    numbers also match the reference: arrivals are bulk-scheduled first
    (sequences ``0..n-1`` in both loops), and completions are assigned
    sequences in global dispatch order — the order the reference loop
    schedules them one at a time — so `(time, seq)` tie-breaking, and
    with it the event stream and the log, is byte-identical.
    """

    def __init__(self, scheduler: ShardedFleetScheduler) -> None:
        self.scheduler = scheduler
        self.engine: EventEngine = EventEngine()
        self.log: Optional[SimulationLog] = None
        self._server_jobs: Dict[int, int] = {}
        # Lower-bound execution-time memo for the horizon: keyed like
        # the core's estimate memo, one entry per (workload, GPU count).
        self._lb_cache: Dict[Tuple[str, int], float] = {}
        self._used = False

    # -------------------------------------------------------------- #
    def _exec_lower_bound(self, job: Job) -> float:
        """Infinite-bandwidth runtime — the job's completion lower bound."""
        key = (job.workload, job.num_gpus)
        bound = self._lb_cache.get(key)
        if bound is None:
            bound = execution_time(
                job.workload_spec(), job.num_gpus, float("inf")
            )
            self._lb_cache[key] = bound
        return bound

    def run(
        self, job_file: JobFile, dynamics: Optional[object] = None
    ) -> SimulationLog:
        """Replay the whole trace; returns the (byte-identical) log.

        Reusable: a second ``run()`` resets the shards (their caches
        stay warm — that is the point of keeping the workers alive) and
        replays into a fresh engine and log.

        ``dynamics`` optionally injects the seeded fleet-chaos axis
        (:class:`repro.scenarios.dynamics.DynamicsSpec`), replayed
        byte-identically to the single-process core: fleet events carry
        :data:`~repro.sim.engine.FLEET_PRIORITY` so they pop before
        same-timestamp job events, every mutation forces a flush first
        (so the parent's running ledger and the shard schedulers agree
        on exactly which jobs each mutation touches), and completions
        carry ``(job_id, start_count)`` incarnation tags so a preempted
        or failed job's stale completion is skipped, not double-freed.
        """
        scheduler = self.scheduler
        if self._used:
            scheduler.reset()
        self._used = True
        engine = EventEngine()
        self.engine = engine
        log = SimulationLog(
            f"{scheduler.gpu_policy}/{scheduler.node_policy}",
            f"cluster[{scheduler.num_servers}]",
        )
        self.log = log
        self._server_jobs = {i: 0 for i in range(scheduler.num_servers)}
        stats_base = scheduler.shard_stats()
        dynamic = dynamics is not None and not dynamics.is_empty()

        jobs = list(job_file)
        times = []
        max_capacity = scheduler.max_capacity
        for job in jobs:
            if job.num_gpus > max_capacity:
                raise ValueError(
                    f"job {job.job_id} requests {job.num_gpus} GPUs; "
                    "no server can ever host it"
                )
            times.append(job.submit_time)
        engine.schedule_many(times, _ARRIVAL, jobs)

        casualty = "requeue"
        victim_policy = "youngest"
        max_request = 0
        starts: Dict[Hashable, int] = {}
        if dynamic:
            casualty = dynamics.casualty
            victim_policy = dynamics.victim
            max_request = max((j.num_gpus for j in jobs), default=0)
            fleet_events = dynamics.build(scheduler.fleet.topologies)
            engine.schedule_many(
                [e.time for e in fleet_events],
                _FLEET,
                fleet_events,
                priority=FLEET_PRIORITY,
            )

        fifo: Deque[Job] = deque()
        running: Dict[Hashable, Tuple[int, int, Tuple, Job]] = {}
        horizon = float("inf")
        inf = float("inf")

        def flush_pending() -> None:
            """Execute buffered batches; schedule the exact completions."""
            nonlocal horizon
            for job, shard, local, gidx, start_t, reply in scheduler.flush():
                _local, gpus, agg_bw, eff_bw, measured, exec_time = reply
                row = (
                    gidx,
                    job.job_id,
                    job.workload,
                    job.num_gpus,
                    job.pattern,
                    job.bandwidth_sensitive,
                    job.submit_time,
                    start_t,
                    start_t + exec_time,
                    gpus,
                    agg_bw,
                    eff_bw,
                    measured,
                )
                running[job.job_id] = (shard, local, row, job)
                if dynamic:
                    count = starts.get(job.job_id, 0) + 1
                    starts[job.job_id] = count
                    payload = (job.job_id, count)
                else:
                    payload = job.job_id
                engine.schedule(start_t + exec_time, _COMPLETION, payload)
            horizon = inf

        def apply_fleet_event(event) -> None:
            """One fleet mutation, after settling all buffered work.

            Flushing first is safe — a mutation pops strictly before
            the horizon, which lower-bounds every pending completion —
            and necessary: the parent's ``running`` ledger must be
            complete before casualties or preemption victims are chosen
            from it.  The branches mirror
            :meth:`repro.sim.core.SimulationCore._apply_fleet_event`
            decision for decision (guards included), so the event
            stream diverges nowhere.
            """
            if scheduler.has_pending:
                flush_pending()
            action = event.action
            if action == "fail":
                if (
                    scheduler.max_active_capacity(exclude=event.server)
                    < max_request
                ):
                    return
                requeue: List[Job] = []
                for job_id in scheduler.fail_server(event.server):
                    entry = running.pop(job_id)
                    if casualty == "requeue":
                        requeue.append(entry[3])
                if requeue:
                    fifo.extendleft(reversed(requeue))
            elif action == "repair":
                scheduler.repair_server(event.server)
            elif action == "remove":
                if (
                    scheduler.max_active_capacity(exclude=event.server)
                    >= max_request
                ):
                    scheduler.drain_server(event.server)
            elif action == "add":
                gidx = scheduler.grow_server(event.topology)
                self._server_jobs.setdefault(gidx, 0)
            elif action == "preempt":
                if not running:
                    return
                ranked = sorted(
                    (entry[2][7], entry[2][1]) for entry in running.values()
                )
                if victim_policy == "youngest":
                    victim_id = ranked[-1][1]
                elif victim_policy == "oldest":
                    victim_id = ranked[0][1]
                else:  # "rank"
                    victim_id = ranked[event.victim_rank % len(ranked)][1]
                shard, local, row, job = running.pop(victim_id)
                scheduler.dispatch_release(victim_id, shard, local, row[3])
                fifo.append(job)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown fleet action {action!r}")

        while True:
            nxt = engine.peek_time()
            if scheduler.has_pending and (nxt is None or nxt >= horizon):
                flush_pending()
                continue
            event = engine.pop()
            if event is None:
                break
            _, kind, payload = event
            if kind == _ARRIVAL:
                fifo.append(payload)
                if len(fifo) > 1:
                    continue
            elif kind == _COMPLETION:
                if dynamic:
                    job_id, count = payload
                    if (
                        job_id not in running
                        or starts.get(job_id) != count
                    ):
                        continue  # stale incarnation — nothing changed
                    payload = job_id
                shard, local, row, _job = running.pop(payload)
                scheduler.dispatch_release(payload, shard, local, row[3])
                self._server_jobs[row[0]] = (
                    self._server_jobs.get(row[0], 0) + 1
                )
                log.append_fields(*row[1:])
            elif kind == _FLEET:
                apply_fleet_event(payload)
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown event kind {kind!r}")
            now = engine.now
            while fifo:
                head = fifo[0]
                target = scheduler.route(head.num_gpus)
                if target is None:
                    break
                scheduler.dispatch_place(head, target[0], target[1], now)
                bound = now + self._exec_lower_bound(head)
                if bound < horizon:
                    horizon = bound
                fifo.popleft()
        if scheduler.has_pending:
            # Trailing releases (completions popped after the last
            # placement) still need to reach their shards so post-run
            # invariant checks and warm restarts see a settled fleet.
            scheduler.flush()
        if fifo:
            raise RuntimeError("simulation ended with jobs still queued")
        log.cache_stats = self._run_cache_stats(stats_base)
        return log

    def _run_cache_stats(
        self, base: Sequence[Mapping[str, float]]
    ) -> Dict[str, float]:
        """Per-run cache counters: end-of-run minus the start snapshot.

        Aggregated fleet-wide (same keys the single-process core
        reports) plus a ``per_shard`` breakdown and the shard count.
        Attached to ``log.cache_stats``, which the log's serialisation
        deliberately excludes — so the digest contract is untouched.
        """
        end = self.scheduler.shard_stats()
        per_shard: List[Dict[str, float]] = []
        for before, after in zip(base, end):
            delta = {
                key: after[key] - before.get(key, 0) for key in after
            }
            lookups = delta.get("scan_lookups")
            if lookups is not None:
                delta["scan_hit_rate"] = (
                    delta.get("scan_hits", 0) / lookups if lookups else 0.0
                )
            per_shard.append(delta)
        stats = aggregate_cache_stats(per_shard)
        stats["shards"] = self.scheduler.num_shards
        stats["per_shard"] = per_shard
        return stats

    def jobs_per_server(self) -> Dict[int, int]:
        """How many completed jobs each (global) server hosted."""
        return dict(self._server_jobs)


def run_sharded(
    fleet: FleetSpec,
    job_file: JobFile,
    shards: int = 1,
    *,
    boundaries: Optional[Sequence[int]] = None,
    gpu_policy: str = "preserve",
    node_policy: str = "first-fit",
    model: EffectiveBandwidthModel = PAPER_MODEL,
    engine: str = "cached",
    mode: str = "process",
    scan_spill_root: Optional[str] = None,
    use_shared_memory: Optional[bool] = None,
    dynamics=None,
) -> SimulationLog:
    """One-call sharded replay: build, run, tear down, return the log.

    The sharded counterpart of
    :func:`repro.cluster.simulator.run_cluster` — same knobs (including
    the ``dynamics`` fleet-chaos axis), same byte-identical log for any
    shard count.  Callers that replay repeatedly (the shard benchmark)
    should hold a :class:`ShardedFleetScheduler` and a
    :class:`ShardedFleetSimulator` open instead, so shard caches stay
    warm across runs.
    """
    with ShardedFleetScheduler(
        fleet,
        shards,
        boundaries=boundaries,
        gpu_policy=gpu_policy,
        node_policy=node_policy,
        model=model,
        engine=engine,
        mode=mode,
        scan_spill_root=scan_spill_root,
        use_shared_memory=use_shared_memory,
    ) as scheduler:
        return ShardedFleetSimulator(scheduler).run(
            job_file, dynamics=dynamics
        )
