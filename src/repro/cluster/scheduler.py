"""Multi-server scheduling: MAPA inside each node, placement across nodes.

The paper scopes MAPA to fragmentation *within* one server and calls
cross-node scheduling complementary (Philly / Gandiva, section 6).  This
extension composes them: a cluster of MAPA-managed servers, a node-
selection policy that picks which server hosts each job, and MAPA
choosing the GPUs within the chosen server.

Node-selection policies:

* ``first-fit``  — lowest-index server that can place the job now;
* ``pack``       — feasible server with the fewest free GPUs (bin-packing:
  keeps whole servers idle for large jobs, Philly's locality goal);
* ``spread``     — feasible server with the most free GPUs;
* ``best-score`` — run MAPA's policy speculatively on every feasible
  server and take the placement with the highest predicted effective
  bandwidth (costlier, topology-aware across nodes).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from itertools import chain
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..allocator.mapa import Mapa
from ..policies.base import Allocation, AllocationPolicy, AllocationRequest
from ..policies.registry import make_policy
from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..scoring.memo import CacheStats, ScanCache
from ..topology.hardware import HardwareGraph

NODE_POLICIES = ("first-fit", "pack", "spread", "best-score")


class CandidateServerIndex:
    """Incremental index of servers by free-GPU count.

    At fleet scale the scheduler used to test every server's free count
    on every event (an O(fleet) scan per arrival, completion and
    backfill probe).  This index buckets server indices by their current
    free-GPU count — bucket ``f`` holds, in ascending index order, the
    servers with exactly ``f`` GPUs free — and is maintained from
    placement/release *deltas*: a server moves between two buckets when
    its free count changes, everything else stays untouched.

    A request for ``k`` GPUs is feasible on exactly the servers in
    buckets ``k .. max_capacity`` (a server's free count never exceeds
    its capacity, so no separate capacity check is needed), and every
    node policy's preference order falls out of how the buckets are
    walked:

    * ascending index (``first-fit`` / ``best-score``): a lazy merge of
      the sorted buckets;
    * ``pack`` — ``(free, index)``: buckets walked smallest-count first;
    * ``spread`` — ``(-free, index)``: buckets walked largest-count
      first.

    Per-event cost is O(buckets + candidates actually consumed) instead
    of O(fleet); the caller usually stops at the first feasible server.
    """

    def __init__(
        self,
        free_counts: Sequence[int],
        capacities: Optional[Sequence[int]] = None,
    ) -> None:
        self._free: List[int] = list(free_counts)
        if capacities is None:
            # Best guess without hardware knowledge: a server can hold
            # at least what it currently has free.  Callers that may
            # construct mid-run (resync after out-of-band mutation)
            # pass the true per-server capacities explicitly.
            self._capacity: List[int] = list(self._free)
        else:
            self._capacity = list(capacities)
            if len(self._capacity) != len(self._free):
                raise ValueError(
                    f"{len(self._capacity)} capacities for "
                    f"{len(self._free)} servers"
                )
        for server, free in enumerate(self._free):
            if free < 0:
                raise ValueError(
                    f"negative free count {free} for server {server}"
                )
            if free > self._capacity[server]:
                raise ValueError(
                    f"free count {free} exceeds capacity "
                    f"{self._capacity[server]} for server {server}"
                )
        cap = max(self._capacity, default=0)
        self._buckets: List[List[int]] = [[] for _ in range(cap + 1)]
        for server, free in enumerate(self._free):
            self._buckets[free].append(server)

    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        """Servers tracked by the index."""
        return len(self._free)

    def free_count(self, server: int) -> int:
        """The index's view of one server's free-GPU count."""
        return self._free[server]

    def capacity(self, server: int) -> int:
        """The index's view of one server's total GPU count."""
        return self._capacity[server]

    def set_free(self, server: int, free: int) -> None:
        """Move ``server`` to bucket ``free`` (no-op if unchanged).

        This is the delta update: O(log bucket + bucket shift) for the
        two touched buckets, nothing else moves.  ``free`` must lie in
        ``0 .. capacity(server)`` — a count above the server's capacity
        is exactly as corrupt as a negative one (it would route
        infeasible requests at the server forever) and raises the same
        :class:`ValueError` shape.
        """
        old = self._free[server]
        if free == old:
            return
        if free < 0:
            raise ValueError(f"negative free count {free} for server {server}")
        if free > self._capacity[server]:
            raise ValueError(
                f"free count {free} exceeds capacity "
                f"{self._capacity[server]} for server {server}"
            )
        bucket = self._buckets[old]
        del bucket[bisect_left(bucket, server)]
        if free >= len(self._buckets):  # pragma: no cover - unreachable
            self._buckets.extend(
                [] for _ in range(free - len(self._buckets) + 1)
            )
        insort(self._buckets[free], server)
        self._free[server] = free

    # ------------------------------------------------------------------ #
    def candidates(self, num_gpus: int, order: str = "index") -> Iterator[int]:
        """Servers with ≥ ``num_gpus`` GPUs free, in preference order.

        ``order`` is ``"index"`` (ascending server index), ``"pack"``
        (fewest free GPUs first) or ``"spread"`` (most free GPUs first);
        ties always break by ascending index.  The iterator is lazy —
        consuming only the first candidate costs only that candidate —
        but the caller must not mutate the index while advancing it
        further (committing a placement and *then* abandoning the
        iterator, as ``try_place`` does, is fine).
        """
        if num_gpus > len(self._buckets) - 1:
            return iter(())
        feasible = self._buckets[max(num_gpus, 0):]
        if order == "index":
            nonempty = [b for b in feasible if b]
            if len(nonempty) == 1:
                return iter(nonempty[0])
            return heapq.merge(*nonempty)
        if order == "pack":
            return chain.from_iterable(feasible)
        if order == "spread":
            return chain.from_iterable(reversed(feasible))
        raise ValueError(f"unknown candidate order {order!r}")

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Tuple[int, ...]:
        """The per-server free counts the index currently believes."""
        return tuple(self._free)

    def check(self, expected_free: Iterable[int]) -> None:
        """Assert the index equals one recomputed from scratch.

        Property tests drive random place/release sequences through the
        scheduler and call this after every step: the per-server counts
        must match ``expected_free`` exactly, and every bucket must hold
        exactly the servers with that free count, sorted ascending.
        """
        expected = list(expected_free)
        if self._free != expected:
            raise AssertionError(
                f"index free counts {self._free} != actual {expected}"
            )
        seen: List[int] = []
        for free, bucket in enumerate(self._buckets):
            if bucket != sorted(bucket):
                raise AssertionError(f"bucket {free} not sorted: {bucket}")
            for server in bucket:
                if self._free[server] != free:
                    raise AssertionError(
                        f"server {server} in bucket {free} but has "
                        f"{self._free[server]} free"
                    )
            seen.extend(bucket)
        if sorted(seen) != list(range(len(self._free))):
            raise AssertionError(
                f"buckets cover {sorted(seen)}, expected every server "
                f"0..{len(self._free) - 1} exactly once"
            )


@dataclass(frozen=True)
class ClusterPlacement:
    """Where a job landed: which server, which GPUs, with what scores."""

    server_index: int
    allocation: Allocation

    @property
    def gpus(self) -> Tuple[int, ...]:
        """The GPUs the job received on its server."""
        return self.allocation.gpus


class MultiServerScheduler:
    """A fleet of MAPA-managed servers behind one queue."""

    def __init__(
        self,
        servers: Sequence[HardwareGraph],
        gpu_policy: str = "preserve",
        node_policy: str = "first-fit",
        model: EffectiveBandwidthModel = PAPER_MODEL,
        engine: str = "cached",
        scan_cache: Optional[ScanCache] = None,
    ) -> None:
        if not servers:
            raise ValueError("cluster needs at least one server")
        if node_policy not in NODE_POLICIES:
            raise ValueError(
                f"unknown node policy {node_policy!r}; known: {NODE_POLICIES}"
            )
        self.node_policy = node_policy
        self.model = model
        # One scan cache for the whole fleet: the content-addressed key
        # partitions by wiring hash, so every server with identical
        # wiring (the common case — fleets are built from a few server
        # groups) shares scans and winners, extending the FleetSpec's
        # link-table sharing to scores.  Callers that replay the same
        # fleet repeatedly may pass their own cache to keep it warm
        # across runs (the fleet-scale benchmark's steady-state gate).
        self.scan_cache: Optional[ScanCache] = (
            (scan_cache if scan_cache is not None else ScanCache())
            if engine == "cached"
            else None
        )
        self.engines: List[Mapa] = [
            Mapa(
                hw,
                make_policy(
                    gpu_policy, model, engine=engine, cache=self.scan_cache
                ),
                model,
            )
            for hw in servers
        ]
        self._job_server: Dict[Hashable, int] = {}
        # Candidate-server index, maintained incrementally from the
        # placement/release dirty sets the engine states publish.  State
        # must be mutated *through* the scheduler (try_place/release/
        # reset) for the index to stay exact; resync_index() recovers
        # from out-of-band engine mutation (e.g. tests poking at
        # engines).
        self._index = CandidateServerIndex(
            [e.state.num_free for e in self.engines],
            capacities=[e.hardware.num_gpus for e in self.engines],
        )

    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        """Servers in the fleet."""
        return len(self.engines)

    @property
    def total_gpus(self) -> int:
        """Fleet-wide GPU count."""
        return sum(e.hardware.num_gpus for e in self.engines)

    @property
    def total_free(self) -> int:
        """Fleet-wide free-GPU count."""
        return sum(e.state.num_free for e in self.engines)

    def can_ever_fit(self, request: AllocationRequest) -> bool:
        """Whether any (idle) server could host the request."""
        return any(
            request.num_gpus <= e.hardware.num_gpus for e in self.engines
        )

    # ------------------------------------------------------------------ #
    # PlacementBackend protocol (repro.sim.core) — the scheduler plugs
    # straight into the unified simulation core.
    # ------------------------------------------------------------------ #
    def free_gpu_counts(self) -> Tuple[int, ...]:
        """Free GPUs per server, indexed like ``engines``."""
        return tuple(e.state.num_free for e in self.engines)

    def hardware_for(self, server_index: int) -> HardwareGraph:
        """The hardware graph of one server."""
        return self.engines[server_index].hardware

    def scan_cache_stats(self) -> Optional[CacheStats]:
        """Counters of the fleet-shared scan cache (``None`` uncached).

        The simulation core snapshots this into
        :attr:`repro.sim.records.SimulationLog.cache_stats` at the end
        of a run.
        """
        return self.scan_cache.stats if self.scan_cache is not None else None

    # ------------------------------------------------------------------ #
    # the incremental candidate-server index
    # ------------------------------------------------------------------ #
    @property
    def candidate_index(self) -> CandidateServerIndex:
        """The fleet's free-GPU-count index (read-only for callers)."""
        return self._index

    def _sync_index(self, server_index: int) -> None:
        """Re-bucket one server from its published placement/release delta.

        Consumes the state's dirty set: an empty drain means the free
        set did not actually change (nothing to re-bucket — and any
        cached winner for the server's current free mask stays live).
        """
        state = self.engines[server_index].state
        if state.drain_dirty():
            self._index.set_free(server_index, state.num_free)

    def resync_index(self) -> None:
        """Rebuild the index from the engines' actual free counts.

        Only needed after engine state was mutated *around* the
        scheduler (direct ``engines[i]`` pokes); normal operation keeps
        the index exact from deltas.  Drains every engine's dirty set
        so stale deltas cannot double-apply later.
        """
        for e in self.engines:
            e.state.drain_dirty()
        self._index = CandidateServerIndex(
            [e.state.num_free for e in self.engines],
            capacities=[e.hardware.num_gpus for e in self.engines],
        )

    def check_index(self) -> None:
        """Assert the delta-maintained index matches a from-scratch scan."""
        self._index.check(e.state.num_free for e in self.engines)

    def _candidates(self, request: AllocationRequest) -> Iterator[int]:
        """Feasible servers in the node policy's preference order.

        Served by the incremental index: servers whose free-GPU count
        cannot fit the request are never visited, so cost scales with
        the candidates consumed rather than the fleet size.  (A server's
        free count never exceeds its capacity, so the old per-server
        capacity check is subsumed by the bucket lower bound.)
        """
        order = {
            "first-fit": "index",
            "best-score": "index",
            "pack": "pack",
            "spread": "spread",
        }[self.node_policy]
        return self._index.candidates(request.num_gpus, order)

    def _candidate_order(self, request: AllocationRequest) -> List[int]:
        """Materialised :meth:`_candidates` (kept for introspection)."""
        return list(self._candidates(request))

    def try_place(self, request: AllocationRequest) -> Optional[ClusterPlacement]:
        """Place a job on some server, committing the allocation."""
        if request.job_id is None:
            raise ValueError("cluster placement requires a job_id")
        if self.node_policy == "best-score":
            return self._place_best_score(request)
        for idx in self._candidates(request):
            allocation = self.engines[idx].try_allocate(request)
            if allocation is not None:
                # The candidate iterator is abandoned here, so mutating
                # the index mid-iteration is safe.
                self._sync_index(idx)
                self._job_server[request.job_id] = idx
                return ClusterPlacement(server_index=idx, allocation=allocation)
        return None

    def _place_best_score(
        self, request: AllocationRequest
    ) -> Optional[ClusterPlacement]:
        """Speculatively run MAPA on every feasible server, keep the best."""
        best_idx: Optional[int] = None
        best_alloc: Optional[Allocation] = None
        best_score = float("-inf")
        for idx in self._candidates(request):
            engine = self.engines[idx]
            free = engine.state.free_sorted  # cached by the free-GPU index
            # propose() threads the state's free-set bitmask down to
            # scan-memoizing policies, so speculative probes of an
            # unchanged server are cache hits, not rescans.
            proposal = engine.propose(request)
            if proposal is None:
                continue
            annotated = engine._annotate(proposal, free, request.job_id)
            score = annotated.scores.get("effective_bw", 0.0)
            if score > best_score:
                best_score = score
                best_idx = idx
                best_alloc = annotated
        if best_idx is None or best_alloc is None:
            return None
        self.engines[best_idx].state.allocate(request.job_id, best_alloc.gpus)
        self._sync_index(best_idx)
        self._job_server[request.job_id] = best_idx
        return ClusterPlacement(server_index=best_idx, allocation=best_alloc)

    def release(self, job_id: Hashable) -> Tuple[int, Tuple[int, ...]]:
        """Free a finished job; returns (server index, freed GPUs)."""
        try:
            idx = self._job_server.pop(job_id)
        except KeyError:
            raise KeyError(f"job {job_id!r} is not placed") from None
        freed = self.engines[idx].release(job_id)
        self._sync_index(idx)
        return idx, freed

    def reset(self) -> None:
        """Release every job on every server."""
        for e in self.engines:
            e.reset()
        self._job_server.clear()
        self.resync_index()
