"""Multi-server scheduling: MAPA inside each node, placement across nodes.

The paper scopes MAPA to fragmentation *within* one server and calls
cross-node scheduling complementary (Philly / Gandiva, section 6).  This
extension composes them: a cluster of MAPA-managed servers, a node-
selection policy that picks which server hosts each job, and MAPA
choosing the GPUs within the chosen server.

Node-selection policies:

* ``first-fit``  — lowest-index server that can place the job now;
* ``pack``       — feasible server with the fewest free GPUs (bin-packing:
  keeps whole servers idle for large jobs, Philly's locality goal);
* ``spread``     — feasible server with the most free GPUs;
* ``best-score`` — run MAPA's policy speculatively on every feasible
  server and take the placement with the highest predicted effective
  bandwidth (costlier, topology-aware across nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..allocator.mapa import Mapa
from ..policies.base import Allocation, AllocationPolicy, AllocationRequest
from ..policies.registry import make_policy
from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..topology.hardware import HardwareGraph

NODE_POLICIES = ("first-fit", "pack", "spread", "best-score")


@dataclass(frozen=True)
class ClusterPlacement:
    """Where a job landed: which server, which GPUs, with what scores."""

    server_index: int
    allocation: Allocation

    @property
    def gpus(self) -> Tuple[int, ...]:
        """The GPUs the job received on its server."""
        return self.allocation.gpus


class MultiServerScheduler:
    """A fleet of MAPA-managed servers behind one queue."""

    def __init__(
        self,
        servers: Sequence[HardwareGraph],
        gpu_policy: str = "preserve",
        node_policy: str = "first-fit",
        model: EffectiveBandwidthModel = PAPER_MODEL,
    ) -> None:
        if not servers:
            raise ValueError("cluster needs at least one server")
        if node_policy not in NODE_POLICIES:
            raise ValueError(
                f"unknown node policy {node_policy!r}; known: {NODE_POLICIES}"
            )
        self.node_policy = node_policy
        self.model = model
        self.engines: List[Mapa] = [
            Mapa(hw, make_policy(gpu_policy, model), model) for hw in servers
        ]
        self._job_server: Dict[Hashable, int] = {}

    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        """Servers in the fleet."""
        return len(self.engines)

    @property
    def total_gpus(self) -> int:
        """Fleet-wide GPU count."""
        return sum(e.hardware.num_gpus for e in self.engines)

    @property
    def total_free(self) -> int:
        """Fleet-wide free-GPU count."""
        return sum(e.state.num_free for e in self.engines)

    def can_ever_fit(self, request: AllocationRequest) -> bool:
        """Whether any (idle) server could host the request."""
        return any(
            request.num_gpus <= e.hardware.num_gpus for e in self.engines
        )

    # ------------------------------------------------------------------ #
    # PlacementBackend protocol (repro.sim.core) — the scheduler plugs
    # straight into the unified simulation core.
    # ------------------------------------------------------------------ #
    def free_gpu_counts(self) -> Tuple[int, ...]:
        """Free GPUs per server, indexed like ``engines``."""
        return tuple(e.state.num_free for e in self.engines)

    def hardware_for(self, server_index: int) -> HardwareGraph:
        """The hardware graph of one server."""
        return self.engines[server_index].hardware

    # ------------------------------------------------------------------ #
    def _candidate_order(self, request: AllocationRequest) -> List[int]:
        """Feasible servers in the node policy's preference order.

        Pruning reads each engine's O(1) ``num_free`` counter — no sets
        are built or copied per event.
        """
        feasible = [
            i
            for i, e in enumerate(self.engines)
            if e.state.num_free >= request.num_gpus
            and request.num_gpus <= e.hardware.num_gpus
        ]
        if self.node_policy == "pack":
            feasible.sort(key=lambda i: (self.engines[i].state.num_free, i))
        elif self.node_policy == "spread":
            feasible.sort(key=lambda i: (-self.engines[i].state.num_free, i))
        # first-fit / best-score keep index order.
        return feasible

    def try_place(self, request: AllocationRequest) -> Optional[ClusterPlacement]:
        """Place a job on some server, committing the allocation."""
        if request.job_id is None:
            raise ValueError("cluster placement requires a job_id")
        order = self._candidate_order(request)
        if not order:
            return None
        if self.node_policy == "best-score":
            return self._place_best_score(request, order)
        for idx in order:
            allocation = self.engines[idx].try_allocate(request)
            if allocation is not None:
                self._job_server[request.job_id] = idx
                return ClusterPlacement(server_index=idx, allocation=allocation)
        return None

    def _place_best_score(
        self, request: AllocationRequest, order: List[int]
    ) -> Optional[ClusterPlacement]:
        """Speculatively run MAPA on every feasible server, keep the best."""
        best_idx: Optional[int] = None
        best_alloc: Optional[Allocation] = None
        best_score = float("-inf")
        for idx in order:
            engine = self.engines[idx]
            free = engine.state.free_sorted  # cached by the free-GPU index
            proposal = engine.policy.allocate(request, engine.hardware, free)
            if proposal is None:
                continue
            annotated = engine._annotate(proposal, free, request.job_id)
            score = annotated.scores.get("effective_bw", 0.0)
            if score > best_score:
                best_score = score
                best_idx = idx
                best_alloc = annotated
        if best_idx is None or best_alloc is None:
            return None
        self.engines[best_idx].state.allocate(request.job_id, best_alloc.gpus)
        self._job_server[request.job_id] = best_idx
        return ClusterPlacement(server_index=best_idx, allocation=best_alloc)

    def release(self, job_id: Hashable) -> Tuple[int, Tuple[int, ...]]:
        """Free a finished job; returns (server index, freed GPUs)."""
        try:
            idx = self._job_server.pop(job_id)
        except KeyError:
            raise KeyError(f"job {job_id!r} is not placed") from None
        return idx, self.engines[idx].release(job_id)

    def reset(self) -> None:
        """Release every job on every server."""
        for e in self.engines:
            e.reset()
        self._job_server.clear()
