"""Multi-server scheduling: MAPA inside each node, placement across nodes.

The paper scopes MAPA to fragmentation *within* one server and calls
cross-node scheduling complementary (Philly / Gandiva, section 6).  This
extension composes them: a cluster of MAPA-managed servers, a node-
selection policy that picks which server hosts each job, and MAPA
choosing the GPUs within the chosen server.

Node-selection policies:

* ``first-fit``  — lowest-index server that can place the job now;
* ``pack``       — feasible server with the fewest free GPUs (bin-packing:
  keeps whole servers idle for large jobs, Philly's locality goal);
* ``spread``     — feasible server with the most free GPUs;
* ``best-score`` — run MAPA's policy speculatively on every feasible
  server and take the placement with the highest predicted effective
  bandwidth (costlier, topology-aware across nodes).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from itertools import chain
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..allocator.mapa import Mapa
from ..policies.base import Allocation, AllocationPolicy, AllocationRequest
from ..policies.registry import make_policy
from ..scoring.effective import EffectiveBandwidthModel, PAPER_MODEL
from ..scoring.memo import CacheStats, ScanCache
from ..topology.hardware import HardwareGraph

NODE_POLICIES = ("first-fit", "pack", "spread", "best-score")

#: Safety bound on the first-fit decision memo (a steady-state fleet
#: revisits a few thousand (server, free-mask, pattern) keys; the cap
#: only matters for adversarially long non-recurring traces, where the
#: memo is simply dropped and rebuilt).
_DECISION_MEMO_CAP = 1 << 17


class CandidateServerIndex:
    """Incremental index of servers by free-GPU count.

    At fleet scale the scheduler used to test every server's free count
    on every event (an O(fleet) scan per arrival, completion and
    backfill probe).  This index buckets server indices by their current
    free-GPU count — bucket ``f`` holds, in ascending index order, the
    servers with exactly ``f`` GPUs free — and is maintained from
    placement/release *deltas*: a server moves between two buckets when
    its free count changes, everything else stays untouched.

    A request for ``k`` GPUs is feasible on exactly the servers in
    buckets ``k .. max_capacity`` (a server's free count never exceeds
    its capacity, so no separate capacity check is needed), and every
    node policy's preference order falls out of how the buckets are
    walked:

    * ascending index (``first-fit`` / ``best-score``): a lazy merge of
      the sorted buckets;
    * ``pack`` — ``(free, index)``: buckets walked smallest-count first;
    * ``spread`` — ``(-free, index)``: buckets walked largest-count
      first.

    Per-event cost is O(buckets + candidates actually consumed) instead
    of O(fleet); the caller usually stops at the first feasible server.
    """

    def __init__(
        self,
        free_counts: Sequence[int],
        capacities: Optional[Sequence[int]] = None,
    ) -> None:
        self._free: List[int] = list(free_counts)
        if capacities is None:
            # Best guess without hardware knowledge: a server can hold
            # at least what it currently has free.  Callers that may
            # construct mid-run (resync after out-of-band mutation)
            # pass the true per-server capacities explicitly.
            self._capacity: List[int] = list(self._free)
        else:
            self._capacity = list(capacities)
            if len(self._capacity) != len(self._free):
                raise ValueError(
                    f"{len(self._capacity)} capacities for "
                    f"{len(self._free)} servers"
                )
        for server, free in enumerate(self._free):
            if free < 0:
                raise ValueError(
                    f"negative free count {free} for server {server}"
                )
            if free > self._capacity[server]:
                raise ValueError(
                    f"free count {free} exceeds capacity "
                    f"{self._capacity[server]} for server {server}"
                )
        cap = max(self._capacity, default=0)
        self._buckets: List[List[int]] = [[] for _ in range(cap + 1)]
        for server, free in enumerate(self._free):
            self._buckets[free].append(server)
        # Fleet-dynamics membership: an inactive server (failed or
        # drained) keeps its index slot and its free count but lives in
        # no bucket, so it is invisible to every candidate walk while
        # releases on it still book-keep correctly.
        self._active: List[bool] = [True] * len(self._free)
        # Largest free count in the fleet, maintained by set_free(): the
        # O(1) infeasibility test.  A saturated fleet retries its queue
        # head after every completion, and most retries are infeasible —
        # this scalar answers them without walking any buckets.
        self._max_free: int = max(self._free, default=0)

    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        """Servers tracked by the index."""
        return len(self._free)

    def free_count(self, server: int) -> int:
        """The index's view of one server's free-GPU count."""
        return self._free[server]

    def capacity(self, server: int) -> int:
        """The index's view of one server's total GPU count."""
        return self._capacity[server]

    @property
    def max_free(self) -> int:
        """The largest free count over all *active* servers (O(1))."""
        return self._max_free

    def is_active(self, server: int) -> bool:
        """Whether ``server`` currently participates in candidate walks."""
        return self._active[server]

    def _drop_max_free(self, old: int) -> None:
        """Walk ``_max_free`` down after the top bucket lost a member.

        Amortised O(1) — the walk only covers ground a matching sequence
        of upward moves paid for.
        """
        if old == self._max_free and not self._buckets[old]:
            top = old
            while top > 0 and not self._buckets[top]:
                top -= 1
            self._max_free = top

    def set_free(self, server: int, free: int) -> None:
        """Move ``server`` to bucket ``free`` (no-op if unchanged).

        This is the delta update: O(log bucket + bucket shift) for the
        two touched buckets, nothing else moves.  ``free`` must lie in
        ``0 .. capacity(server)`` — a count above the server's capacity
        is exactly as corrupt as a negative one (it would route
        infeasible requests at the server forever) and raises the same
        :class:`ValueError` shape.  An inactive server only records the
        count (a drained server's jobs keep finishing); its bucket
        placement happens at :meth:`activate` time.
        """
        old = self._free[server]
        if free == old:
            return
        if free < 0:
            raise ValueError(f"negative free count {free} for server {server}")
        if free > self._capacity[server]:
            raise ValueError(
                f"free count {free} exceeds capacity "
                f"{self._capacity[server]} for server {server}"
            )
        if not self._active[server]:
            self._free[server] = free
            return
        bucket = self._buckets[old]
        del bucket[bisect_left(bucket, server)]
        if free >= len(self._buckets):  # pragma: no cover - unreachable
            self._buckets.extend(
                [] for _ in range(free - len(self._buckets) + 1)
            )
        insort(self._buckets[free], server)
        self._free[server] = free
        if free > self._max_free:
            self._max_free = free
        else:
            self._drop_max_free(old)

    # ------------------------------------------------------------------ #
    # fleet-dynamics membership
    # ------------------------------------------------------------------ #
    def add_server(self, free: int, capacity: int) -> int:
        """Append a new (active) server; returns its index.

        The autoscale-grow path: the server lands in bucket ``free``
        with the highest index, so every candidate order sees it after
        the incumbents it ties with — deterministic and
        insertion-stable.
        """
        if free < 0 or free > capacity:
            raise ValueError(
                f"free count {free} out of range for capacity {capacity}"
            )
        server = len(self._free)
        self._free.append(free)
        self._capacity.append(capacity)
        self._active.append(True)
        if capacity >= len(self._buckets):
            self._buckets.extend(
                [] for _ in range(capacity - len(self._buckets) + 1)
            )
        self._buckets[free].append(server)  # highest index: stays sorted
        if free > self._max_free:
            self._max_free = free
        return server

    def deactivate(self, server: int) -> None:
        """Remove ``server`` from every candidate walk (keep its slot).

        Failure and drain both route through here: the server's free
        count stays tracked (releases on a draining server still update
        it via :meth:`set_free`) but no placement will ever consider it.
        No-op if already inactive.
        """
        if not self._active[server]:
            return
        old = self._free[server]
        bucket = self._buckets[old]
        del bucket[bisect_left(bucket, server)]
        self._active[server] = False
        self._drop_max_free(old)

    def activate(self, server: int, free: Optional[int] = None) -> None:
        """Return ``server`` to candidate walks (the repair path).

        ``free`` overrides the tracked free count (a repaired server
        comes back empty, i.e. fully free).  No-op if already active.
        """
        if self._active[server]:
            return
        if free is not None:
            if free < 0 or free > self._capacity[server]:
                raise ValueError(
                    f"free count {free} out of range for server {server}"
                )
            self._free[server] = free
        count = self._free[server]
        insort(self._buckets[count], server)
        self._active[server] = True
        if count > self._max_free:
            self._max_free = count

    def first(self, num_gpus: int) -> Optional[int]:
        """Lowest-index server with ≥ ``num_gpus`` free, or ``None``.

        The O(buckets) fast path for ``first-fit``: the answer is the
        smallest bucket *head* among the feasible buckets (buckets are
        sorted ascending), so no merge iterator is built.  Equivalent to
        ``next(candidates(num_gpus, "index"), None)``.  An infeasible
        request — the common case when a saturated fleet retries its
        queue head after a completion — is rejected in O(1) off the
        maintained max free count, before any bucket is touched.
        """
        if num_gpus > self._max_free:
            return None
        best: Optional[int] = None
        for bucket in self._buckets[max(num_gpus, 0) : self._max_free + 1]:
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best

    # ------------------------------------------------------------------ #
    def candidates(self, num_gpus: int, order: str = "index") -> Iterator[int]:
        """Servers with ≥ ``num_gpus`` GPUs free, in preference order.

        ``order`` is ``"index"`` (ascending server index), ``"pack"``
        (fewest free GPUs first) or ``"spread"`` (most free GPUs first);
        ties always break by ascending index.  The iterator is lazy —
        consuming only the first candidate costs only that candidate —
        but the caller must not mutate the index while advancing it
        further (committing a placement and *then* abandoning the
        iterator, as ``try_place`` does, is fine).
        """
        if num_gpus > self._max_free:
            return iter(())
        feasible = self._buckets[max(num_gpus, 0) : self._max_free + 1]
        if order == "index":
            nonempty = [b for b in feasible if b]
            if len(nonempty) == 1:
                return iter(nonempty[0])
            return heapq.merge(*nonempty)
        if order == "pack":
            return chain.from_iterable(feasible)
        if order == "spread":
            return chain.from_iterable(reversed(feasible))
        raise ValueError(f"unknown candidate order {order!r}")

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Tuple[int, ...]:
        """The per-server free counts the index currently believes."""
        return tuple(self._free)

    def bucket_summary(self) -> Tuple[int, Tuple[int, ...]]:
        """``(max_free, histogram)`` — the index compressed to O(capacity).

        ``histogram[f]`` is the number of servers with exactly ``f``
        GPUs free (one entry per bucket, ``0 .. max capacity``).  This
        is the routing summary sharded fleets exchange: it is enough to
        answer every node policy's *shard*-level question — first-fit
        feasibility is ``max_free >= k``, pack wants the smallest
        non-empty bucket ``>= k``, spread the largest — without
        shipping per-server state, and cheap enough to piggyback on
        every placement/release reply.
        """
        return self._max_free, tuple(len(b) for b in self._buckets)

    def check(
        self,
        expected_free: Iterable[int],
        expected_active: Optional[Iterable[bool]] = None,
    ) -> None:
        """Assert the index equals one recomputed from scratch.

        Property tests drive random place/release sequences through the
        scheduler and call this after every step: the per-server counts
        must match ``expected_free`` exactly, and every bucket must hold
        exactly the *active* servers with that free count, sorted
        ascending.  ``expected_active`` defaults to all-active (the
        static-fleet contract).
        """
        expected = list(expected_free)
        if self._free != expected:
            raise AssertionError(
                f"index free counts {self._free} != actual {expected}"
            )
        active = (
            [True] * len(expected)
            if expected_active is None
            else list(expected_active)
        )
        if self._active != active:
            raise AssertionError(
                f"index activity {self._active} != actual {active}"
            )
        seen: List[int] = []
        for free, bucket in enumerate(self._buckets):
            if bucket != sorted(bucket):
                raise AssertionError(f"bucket {free} not sorted: {bucket}")
            for server in bucket:
                if self._free[server] != free:
                    raise AssertionError(
                        f"server {server} in bucket {free} but has "
                        f"{self._free[server]} free"
                    )
            seen.extend(bucket)
        expected_members = [s for s, up in enumerate(active) if up]
        if sorted(seen) != expected_members:
            raise AssertionError(
                f"buckets cover {sorted(seen)}, expected exactly the "
                f"active servers {expected_members}"
            )
        true_max = max(
            (f for s, f in enumerate(self._free) if active[s]), default=0
        )
        if self._max_free != true_max:
            raise AssertionError(
                f"maintained max free {self._max_free} != actual {true_max}"
            )


@dataclass(frozen=True)
class ClusterPlacement:
    """Where a job landed: which server, which GPUs, with what scores."""

    server_index: int
    allocation: Allocation

    @property
    def gpus(self) -> Tuple[int, ...]:
        """The GPUs the job received on its server."""
        return self.allocation.gpus


class MultiServerScheduler:
    """A fleet of MAPA-managed servers behind one queue."""

    def __init__(
        self,
        servers: Sequence[HardwareGraph],
        gpu_policy: str = "preserve",
        node_policy: str = "first-fit",
        model: EffectiveBandwidthModel = PAPER_MODEL,
        engine: str = "cached",
        scan_cache: Optional[ScanCache] = None,
        annotate_memo: str = "split",
        scan_spill: Optional[object] = None,
        fast_paths: bool = True,
    ) -> None:
        if not servers:
            raise ValueError("cluster needs at least one server")
        if node_policy not in NODE_POLICIES:
            raise ValueError(
                f"unknown node policy {node_policy!r}; known: {NODE_POLICIES}"
            )
        self.node_policy = node_policy
        # The candidate order is fixed by the node policy; resolve it
        # once instead of rebuilding the dispatch dict per placement.
        self._order = {
            "first-fit": "index",
            "best-score": "index",
            "pack": "pack",
            "spread": "spread",
        }[node_policy]
        self.model = model
        # One scan cache for the whole fleet: the content-addressed key
        # partitions by wiring hash, so every server with identical
        # wiring (the common case — fleets are built from a few server
        # groups) shares scans and winners, extending the FleetSpec's
        # link-table sharing to scores.  Callers that replay the same
        # fleet repeatedly may pass their own cache to keep it warm
        # across runs (the fleet-scale benchmark's steady-state gate).
        self.scan_cache: Optional[ScanCache] = (
            (scan_cache if scan_cache is not None else ScanCache())
            if engine == "cached"
            else None
        )
        self.engines: List[Mapa] = [
            Mapa(
                hw,
                make_policy(
                    gpu_policy, model, engine=engine, cache=self.scan_cache
                ),
                model,
                annotate_memo=annotate_memo,
            )
            for hw in servers
        ]
        # Construction knobs retained for autoscale grow: add_server()
        # builds the new engine exactly as __init__ would have.
        self._gpu_policy = gpu_policy
        self._engine_kind = engine
        self._annotate_memo = annotate_memo
        # Fleet-dynamics membership: one status per engine ("up",
        # "failed" or "drained"), plus the construction-time fleet size
        # so reset() can truncate grown servers.
        self._status: List[str] = ["up"] * len(self.engines)
        self._initial_servers = len(self.engines)
        self._max_capacity = max(e.hardware.num_gpus for e in self.engines)
        # ``fast_paths=False`` replays the pre-columnar scheduling loop
        # exactly: the bucket-merge candidate iterator instead of the
        # O(buckets) first-fit resolve, the dirty-*set* drain instead
        # of the boolean consume, and no decision memo.  The object
        # simulation core runs with it so the fleet benchmark's
        # columnar gate measures against the historical warm-cache
        # number, not a retro-tuned one.  Results are identical either
        # way — only speed differs.
        self._fast_paths = fast_paths
        # Decision memo (first-fit fast path only): for a fixed policy
        # and model, the committed winner — GPUs, match and the full
        # annotated score vector — is a pure function of (server
        # wiring, its free bitmask, bandwidth sensitivity, pattern
        # structure).  Steady-state replays re-commit the same few
        # thousand decisions, so a hit skips the whole propose→annotate
        # chain and rebinds the memoised allocation to the new job id
        # (job_id never influences the decision; only the rebound copy
        # carries it).  When a shared scan cache is attached, the memo
        # lives in its content-addressed ``aux`` side-car under a
        # policy/model fingerprint — the cache object is exactly what
        # callers thread through repeated replays, so decisions stay
        # warm across runs just like scans do.
        if fast_paths and self.scan_cache is not None:
            policy_type = type(self.engines[0].policy)
            fingerprint = (
                "first-fit-decisions",
                f"{policy_type.__module__}.{policy_type.__qualname__}",
                model.coefficients,
            )
            self._decision_memo: Dict[
                Tuple, Tuple[Allocation, Tuple[int, ...], int]
            ] = self.scan_cache.aux.setdefault(fingerprint, {})
        else:
            self._decision_memo = {}
        # Optional persistent scan-cache tier (duck-typed so the cluster
        # layer never imports the experiments layer): anything with
        # ``load(cache, topology_hashes)`` / ``spill(cache)`` — in
        # practice :class:`repro.experiments.spill.ScanSpillStore`.
        # Loading at construction warm-starts the fleet-shared cache
        # from disk; ``spill_scan_cache()`` writes it back.
        self.scan_spill = scan_spill
        if scan_spill is not None and self.scan_cache is not None:
            scan_spill.load(
                self.scan_cache,
                {e.hardware.topology_hash for e in self.engines},
            )
        # Per-engine topology hashes, resolved once: the decision-memo
        # key is built on every first-fit placement, and the hash is
        # immutable per engine.
        self._topo_hashes: List[str] = [
            e.hardware.topology_hash for e in self.engines
        ]
        self._job_server: Dict[Hashable, int] = {}
        # Candidate-server index, maintained incrementally from the
        # placement/release dirty sets the engine states publish.  State
        # must be mutated *through* the scheduler (try_place/release/
        # reset) for the index to stay exact; resync_index() recovers
        # from out-of-band engine mutation (e.g. tests poking at
        # engines).
        self._index = CandidateServerIndex(
            [e.state.num_free for e in self.engines],
            capacities=[e.hardware.num_gpus for e in self.engines],
        )

    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        """Servers in the fleet."""
        return len(self.engines)

    @property
    def total_gpus(self) -> int:
        """Fleet-wide GPU count."""
        return sum(e.hardware.num_gpus for e in self.engines)

    @property
    def total_free(self) -> int:
        """Fleet-wide free-GPU count."""
        return sum(e.state.num_free for e in self.engines)

    def can_ever_fit(self, request: AllocationRequest) -> bool:
        """Whether any (idle) server could host the request (O(1))."""
        return request.num_gpus <= self._max_capacity

    # ------------------------------------------------------------------ #
    # PlacementBackend protocol (repro.sim.core) — the scheduler plugs
    # straight into the unified simulation core.
    # ------------------------------------------------------------------ #
    def free_gpu_counts(self) -> Tuple[int, ...]:
        """Free GPUs per server, indexed like ``engines``."""
        return tuple(e.state.num_free for e in self.engines)

    def max_free_count(self) -> int:
        """Largest per-server free-GPU count, O(1) off the index.

        The optional :class:`~repro.sim.core.PlacementBackend` hook the
        columnar FIFO loop uses to reject doomed head retries on a
        saturated fleet without touching the placement path.
        """
        return self._index.max_free

    def hardware_for(self, server_index: int) -> HardwareGraph:
        """The hardware graph of one server."""
        return self.engines[server_index].hardware

    def scan_cache_stats(self) -> Optional[CacheStats]:
        """Counters of the fleet-shared scan cache (``None`` uncached).

        The simulation core snapshots this into
        :attr:`repro.sim.records.SimulationLog.cache_stats` at the end
        of a run.
        """
        return self.scan_cache.stats if self.scan_cache is not None else None

    def spill_scan_cache(self) -> int:
        """Write the fleet-shared scan cache to the persistent tier.

        Returns the number of entries spilled (0 when no spill store or
        no cache is configured).  The counterpart of the load performed
        at construction — call it after a replay to make the next
        process (or machine: the key is content-addressed by wiring
        hash) start warm.
        """
        if self.scan_spill is None or self.scan_cache is None:
            return 0
        return self.scan_spill.spill(self.scan_cache)

    # ------------------------------------------------------------------ #
    # the incremental candidate-server index
    # ------------------------------------------------------------------ #
    @property
    def candidate_index(self) -> CandidateServerIndex:
        """The fleet's free-GPU-count index (read-only for callers)."""
        return self._index

    def _sync_index(self, server_index: int) -> None:
        """Re-bucket one server from its published placement/release delta.

        Consumes the state's dirty set: an empty drain means the free
        set did not actually change (nothing to re-bucket — and any
        cached winner for the server's current free mask stays live).
        """
        state = self.engines[server_index].state
        changed = (
            state.consume_dirty() if self._fast_paths else bool(state.drain_dirty())
        )
        if changed:
            self._index.set_free(server_index, state.num_free)

    def resync_index(self) -> None:
        """Rebuild the index from the engines' actual free counts.

        Only needed after engine state was mutated *around* the
        scheduler (direct ``engines[i]`` pokes); normal operation keeps
        the index exact from deltas.  Drains every engine's dirty set
        so stale deltas cannot double-apply later.
        """
        for e in self.engines:
            e.state.drain_dirty()
        self._index = CandidateServerIndex(
            [e.state.num_free for e in self.engines],
            capacities=[e.hardware.num_gpus for e in self.engines],
        )
        for server, status in enumerate(self._status):
            if status != "up":
                self._index.deactivate(server)

    def check_index(self) -> None:
        """Assert the delta-maintained index matches a from-scratch scan."""
        self._index.check(
            (e.state.num_free for e in self.engines),
            (status == "up" for status in self._status),
        )

    # ------------------------------------------------------------------ #
    # fleet dynamics: failure / repair / autoscale
    # ------------------------------------------------------------------ #
    def server_status(self, server: int) -> str:
        """``"up"``, ``"failed"`` or ``"drained"``."""
        return self._status[server]

    def max_active_capacity(self, exclude: Optional[int] = None) -> int:
        """Largest GPU capacity over up servers (optionally minus one).

        The deadlock guard: before failing or draining a server the
        caller checks the *remaining* fleet can still host the largest
        request in play; removing the last big server would strand its
        jobs forever.
        """
        return max(
            (
                e.hardware.num_gpus
                for i, e in enumerate(self.engines)
                if self._status[i] == "up" and i != exclude
            ),
            default=0,
        )

    def fail_server(self, server: int) -> List[Hashable]:
        """Take ``server`` down instantly; returns its casualties.

        Every allocation on the server is released (so the shared
        :class:`~repro.scoring.memo.ScanCache` bitmask keys and the
        candidate index stay exact) and the job ids are returned in
        allocation order — the caller decides their fate (requeue or
        kill) per the scenario's casualty policy.  No-op (empty list) on
        a server that is not up.
        """
        if self._status[server] != "up":
            return []
        casualties = list(self.engines[server].state.active_jobs)
        for job_id in casualties:
            del self._job_server[job_id]
            self.engines[server].release(job_id)
        self._sync_index(server)
        self._index.deactivate(server)
        self._status[server] = "failed"
        return casualties

    def repair_server(self, server: int) -> bool:
        """Bring a failed server back (empty, schedulable).  No-op
        unless currently failed."""
        if self._status[server] != "failed":
            return False
        # The failure released everything, so the engine is already
        # empty; activation re-buckets it at its (full) free count.
        self._index.activate(
            server, free=self.engines[server].state.num_free
        )
        self._status[server] = "up"
        return True

    def drain_server(self, server: int) -> bool:
        """Autoscale shrink: stop placing on ``server``; jobs finish
        naturally.  No-op unless currently up."""
        if self._status[server] != "up":
            return False
        self._index.deactivate(server)
        self._status[server] = "drained"
        return True

    def add_server(self, hardware: HardwareGraph) -> int:
        """Autoscale grow: a new server joins, immediately schedulable.

        The engine is built with the construction-time policy/model
        knobs and the fleet-shared scan cache, so the newcomer's scans
        land in (and hit) the same content-addressed entries as its
        wiring twins.  Returns the new server index (always the highest:
        membership history never renumbers incumbents).
        """
        engine = Mapa(
            hardware,
            make_policy(
                self._gpu_policy,
                self.model,
                engine=self._engine_kind,
                cache=self.scan_cache,
            ),
            self.model,
            annotate_memo=self._annotate_memo,
        )
        self.engines.append(engine)
        self._status.append("up")
        self._topo_hashes.append(hardware.topology_hash)
        if hardware.num_gpus > self._max_capacity:
            self._max_capacity = hardware.num_gpus
        if self.scan_spill is not None and self.scan_cache is not None:
            self.scan_spill.load(self.scan_cache, {hardware.topology_hash})
        return self._index.add_server(
            engine.state.num_free, hardware.num_gpus
        )

    def grow_server(self, topology: str) -> int:
        """:meth:`add_server` by topology *name* (the autoscale event).

        Reuses an incumbent's (immutable, shareable)
        :class:`~repro.topology.hardware.HardwareGraph` instance when
        one of the same name exists — the
        :meth:`~repro.scenarios.fleet.FleetSpec.build` sharing
        discipline — and otherwise builds the graph fresh, adopting the
        precomputed link table of any wiring twin already in the fleet.
        """
        for e in self.engines:
            if e.hardware.name == topology:
                return self.add_server(e.hardware)
        from ..topology.builders import by_name

        hardware = by_name(topology)
        wiring = hardware.topology_hash
        for e in self.engines:
            if e.hardware.topology_hash == wiring:
                hardware.adopt_link_table(e.hardware.link_table)
                break
        return self.add_server(hardware)

    def _candidates(self, request: AllocationRequest) -> Iterator[int]:
        """Feasible servers in the node policy's preference order.

        Served by the incremental index: servers whose free-GPU count
        cannot fit the request are never visited, so cost scales with
        the candidates consumed rather than the fleet size.  (A server's
        free count never exceeds its capacity, so the old per-server
        capacity check is subsumed by the bucket lower bound.)
        """
        return self._index.candidates(request.num_gpus, self._order)

    def _candidate_order(self, request: AllocationRequest) -> List[int]:
        """Materialised :meth:`_candidates` (kept for introspection)."""
        return list(self._candidates(request))

    def try_place(self, request: AllocationRequest) -> Optional[ClusterPlacement]:
        """Place a job on some server, committing the allocation."""
        if request.job_id is None:
            raise ValueError("cluster placement requires a job_id")
        if self.node_policy == "best-score":
            return self._place_best_score(request)
        if self._order == "index" and self._fast_paths:
            # first-fit fast path: the registered policies match every
            # k-subset of the free GPUs (absent links score zero, they
            # never make a subset infeasible), so the first candidate
            # server virtually always commits — resolve it in O(buckets)
            # without building the bucket-merge iterator.  A policy that
            # does decline falls through to the full candidate walk.
            idx = self._index.first(request.num_gpus)
            if idx is None:
                return None
            engine = self.engines[idx]
            key = (
                self._topo_hashes[idx],
                engine.state.free_bitmask,
                request.bandwidth_sensitive,
                request.pattern,
            )
            entry = self._decision_memo.get(key)
            if entry is not None:
                # Memoized winner: re-commit with the stored canonical
                # GPU tuple and its prebuilt bitmask (one intersection
                # validates the whole set), then re-bucket the index
                # directly — the state change is exactly the delta, so
                # no dirty-set round trip is needed.
                template, chosen, delta = entry
                state = engine.state
                state.allocate_prevalidated(request.job_id, chosen, delta)
                self._index.set_free(idx, state.num_free)
                self._job_server[request.job_id] = idx
                return ClusterPlacement(
                    server_index=idx, allocation=template.rebind(request.job_id)
                )
            allocation = engine.try_allocate(request)
            if allocation is not None:
                if len(self._decision_memo) >= _DECISION_MEMO_CAP:
                    self._decision_memo.clear()
                chosen = tuple(sorted(set(allocation.gpus)))
                self._decision_memo[key] = (
                    allocation,
                    chosen,
                    engine.state.mask_of(chosen),
                )
                self._sync_index(idx)
                self._job_server[request.job_id] = idx
                return ClusterPlacement(server_index=idx, allocation=allocation)
        for idx in self._candidates(request):
            allocation = self.engines[idx].try_allocate(request)
            if allocation is not None:
                # The candidate iterator is abandoned here, so mutating
                # the index mid-iteration is safe.
                self._sync_index(idx)
                self._job_server[request.job_id] = idx
                return ClusterPlacement(server_index=idx, allocation=allocation)
        return None

    def _place_best_score(
        self, request: AllocationRequest
    ) -> Optional[ClusterPlacement]:
        """Speculatively run MAPA on every feasible server, keep the best."""
        best_idx: Optional[int] = None
        best_alloc: Optional[Allocation] = None
        best_score = float("-inf")
        for idx in self._candidates(request):
            engine = self.engines[idx]
            free = engine.state.free_sorted  # cached by the free-GPU index
            # propose() threads the state's free-set bitmask down to
            # scan-memoizing policies, so speculative probes of an
            # unchanged server are cache hits, not rescans.
            proposal = engine.propose(request)
            if proposal is None:
                continue
            annotated = engine._annotate(proposal, free, request.job_id)
            score = annotated.scores.get("effective_bw", 0.0)
            if score > best_score:
                best_score = score
                best_idx = idx
                best_alloc = annotated
        if best_idx is None or best_alloc is None:
            return None
        self.engines[best_idx].state.allocate(request.job_id, best_alloc.gpus)
        self._sync_index(best_idx)
        self._job_server[request.job_id] = best_idx
        return ClusterPlacement(server_index=best_idx, allocation=best_alloc)

    def release(self, job_id: Hashable) -> Tuple[int, Tuple[int, ...]]:
        """Free a finished job; returns (server index, freed GPUs)."""
        try:
            idx = self._job_server.pop(job_id)
        except KeyError:
            raise KeyError(f"job {job_id!r} is not placed") from None
        freed = self.engines[idx].release(job_id)
        self._sync_index(idx)
        return idx, freed

    def reset(self) -> None:
        """Release every job and undo fleet-dynamics history.

        Grown servers are truncated, failed/drained servers come back
        up: the scheduler returns to its construction-time fleet.
        """
        del self.engines[self._initial_servers :]
        del self._topo_hashes[self._initial_servers :]
        del self._status[self._initial_servers :]
        for e in self.engines:
            e.reset()
        self._status = ["up"] * len(self.engines)
        self._max_capacity = max(e.hardware.num_gpus for e in self.engines)
        self._job_server.clear()
        self.resync_index()
