"""Multi-server extension: MAPA within each node, placement across nodes."""

from .scheduler import (
    NODE_POLICIES,
    CandidateServerIndex,
    ClusterPlacement,
    MultiServerScheduler,
)
from .sharding import (
    SHARDABLE_NODE_POLICIES,
    ShardPlan,
    SharedFleetManifest,
    SharedLinkTableView,
    ShardedFleetScheduler,
    ShardedFleetSimulator,
    aggregate_cache_stats,
    run_sharded,
)
from .simulator import (
    ClusterJobRecord,
    ClusterSimulator,  # deprecated alias of MultiServerSimulator
    MultiServerSimulator,
    run_cluster,
)

__all__ = [
    "NODE_POLICIES",
    "SHARDABLE_NODE_POLICIES",
    "CandidateServerIndex",
    "ClusterPlacement",
    "MultiServerScheduler",
    "ShardPlan",
    "SharedFleetManifest",
    "SharedLinkTableView",
    "ShardedFleetScheduler",
    "ShardedFleetSimulator",
    "aggregate_cache_stats",
    "run_sharded",
    "ClusterJobRecord",
    "ClusterSimulator",
    "MultiServerSimulator",
    "run_cluster",
]
