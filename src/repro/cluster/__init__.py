"""Multi-server extension: MAPA within each node, placement across nodes."""

from .scheduler import (
    NODE_POLICIES,
    CandidateServerIndex,
    ClusterPlacement,
    MultiServerScheduler,
)
from .simulator import (
    ClusterJobRecord,
    ClusterSimulator,  # deprecated alias of MultiServerSimulator
    MultiServerSimulator,
    run_cluster,
)

__all__ = [
    "NODE_POLICIES",
    "CandidateServerIndex",
    "ClusterPlacement",
    "MultiServerScheduler",
    "ClusterJobRecord",
    "ClusterSimulator",
    "MultiServerSimulator",
    "run_cluster",
]
