"""NCCL-style ring construction over an allocation's interconnect.

NCCL implements all-reduce (the dominant collective in ML training) by
building *rings* over the participating GPUs — one ring per available
NVLink channel — and streaming data around them.  A ring's throughput is
capped by its slowest hop, and total bus bandwidth is the sum across
edge-disjoint rings.  This is the mechanism behind the paper's central
observation: effective bandwidth depends on the *mix* of links in an
allocation, not on their aggregate sum.  A fragmented allocation whose
GPUs lack an all-NVLink cycle collapses to a host-routed PCIe ring no
matter how much NVLink bandwidth dangles unused off its vertices.

We model the allocation's NVLink capacity as a channel multigraph (a
double NVLink-v2 edge contributes two 25 GB/s channels) and peel
edge-disjoint Hamiltonian cycles from it by backtracking search — exact
and fast for the ≤16-GPU servers studied in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..topology.hardware import HardwareGraph
from ..topology.links import LinkType, bandwidth_of

Pair = FrozenSet[int]


@dataclass(frozen=True)
class Ring:
    """One NCCL ring: a cyclic GPU order and its bottleneck bandwidth."""

    order: Tuple[int, ...]
    bottleneck_gbps: float
    uses_pcie: bool = False

    @property
    def num_gpus(self) -> int:
        return len(self.order)


@dataclass(frozen=True)
class RingDecomposition:
    """The set of rings NCCL would build over an allocation."""

    gpus: Tuple[int, ...]
    rings: Tuple[Ring, ...]

    @property
    def total_bandwidth_gbps(self) -> float:
        """Sum of the per-ring bottleneck bandwidths (peak bus bandwidth)."""
        return sum(r.bottleneck_gbps for r in self.rings)

    @property
    def num_nvlink_rings(self) -> int:
        return sum(1 for r in self.rings if not r.uses_pcie)


class _ChannelGraph:
    """Mutable multigraph of remaining NVLink channels over an allocation."""

    def __init__(self, hardware: HardwareGraph, gpus: Sequence[int]) -> None:
        self.gpus = tuple(sorted(gpus))
        self.channels: Dict[Pair, int] = {}
        self.channel_bw: Dict[Pair, float] = {}
        # Read channel counts / per-channel bandwidths from the topology's
        # precomputed link table instead of resolving each pair.
        table = hardware.link_table
        idx = table.index
        n = table.n
        for i, u in enumerate(self.gpus):
            ru = idx[u] * n
            for v in self.gpus[i + 1 :]:
                p = ru + idx[v]
                if table.nvlink[p]:
                    key = frozenset((u, v))
                    self.channels[key] = table.channels[p]
                    self.channel_bw[key] = table.per_channel[p]

    def available(self, u: int, v: int) -> bool:
        return self.channels.get(frozenset((u, v)), 0) > 0

    def bw(self, u: int, v: int) -> float:
        return self.channel_bw[frozenset((u, v))]

    def consume_cycle(self, order: Sequence[int]) -> None:
        n = len(order)
        for i in range(n):
            key = frozenset((order[i], order[(i + 1) % n]))
            self.channels[key] -= 1
            assert self.channels[key] >= 0


def _find_hamiltonian_cycle(
    cg: _ChannelGraph, prefer: str = "scarcity"
) -> Optional[Tuple[int, ...]]:
    """Find one Hamiltonian cycle through the remaining NVLink channels.

    Backtracking search anchored at the lowest GPU id.  ``prefer``
    controls the neighbour ordering heuristic:

    * ``"scarcity"`` — try edges with the most remaining channels first,
      so scarce single links are saved for later rings (better peels);
    * ``"bandwidth"`` — try the fastest channels first;
    * ``"id"`` — plain vertex-id order.
    """
    gpus = cg.gpus
    n = len(gpus)
    if n < 3:
        return None
    start = gpus[0]
    path = [start]
    on_path = {start}

    def neighbours(u: int) -> List[int]:
        out = [v for v in gpus if v != u and v not in on_path and cg.available(u, v)]
        if prefer == "scarcity":
            out.sort(key=lambda v: (-cg.channels[frozenset((u, v))], v))
        elif prefer == "bandwidth":
            out.sort(key=lambda v: (-cg.bw(u, v), v))
        else:
            out.sort()
        return out

    def backtrack() -> bool:
        if len(path) == n:
            return cg.available(path[-1], start)
        for v in neighbours(path[-1]):
            path.append(v)
            on_path.add(v)
            if backtrack():
                return True
            path.pop()
            on_path.discard(v)
        return False

    if backtrack():
        return tuple(path)
    return None


def _peel_rings(
    hardware: HardwareGraph, verts: Tuple[int, ...], prefer: str
) -> List[Ring]:
    """Peel edge-disjoint NVLink Hamiltonian cycles under one heuristic."""
    cg = _ChannelGraph(hardware, verts)
    rings: List[Ring] = []
    while True:
        cycle = _find_hamiltonian_cycle(cg, prefer)
        if cycle is None:
            break
        n = len(cycle)
        bottleneck = min(cg.bw(cycle[i], cycle[(i + 1) % n]) for i in range(n))
        cg.consume_cycle(cycle)
        rings.append(Ring(order=cycle, bottleneck_gbps=bottleneck))
    return rings


def build_rings(
    hardware: HardwareGraph,
    gpus: Iterable[int],
    pcie_bandwidth_gbps: float = bandwidth_of(LinkType.PCIE),
) -> RingDecomposition:
    """Decompose an allocation into NCCL rings.

    Rules (mirroring NCCL channel construction):

    * 1 GPU: no rings (no inter-GPU communication).
    * 2 GPUs: one ring per channel of the connecting link; a pure-PCIe pair
      gets the single host-routed ring.
    * ≥3 GPUs: peel edge-disjoint all-NVLink Hamiltonian cycles; if none
      exists the allocation is *fragmented* and all traffic shares one
      host-routed ring whose bottleneck is PCIe.  (A ring with even one
      PCIe hop runs at PCIe speed end-to-end, so mixed rings are never
      better than the host ring — we model them as the host ring.)
    """
    verts = tuple(sorted(set(gpus)))
    for g in verts:
        if g not in hardware:
            raise KeyError(f"unknown GPU {g}")
    if len(verts) < 2:
        return RingDecomposition(gpus=verts, rings=())

    if len(verts) == 2:
        u, v = verts
        table = hardware.link_table
        if table.has_nvlink(u, v):
            per = table.channel_bandwidth(u, v)
            rings = tuple(
                Ring(order=verts, bottleneck_gbps=per)
                for _ in range(table.num_channels(u, v))
            )
        else:
            rings = (Ring(order=verts, bottleneck_gbps=pcie_bandwidth_gbps, uses_pcie=True),)
        return RingDecomposition(gpus=verts, rings=rings)

    # A greedy peel can pick a first cycle that strands channels a better
    # decomposition would have used; try the three deterministic heuristics
    # and keep the decomposition with the highest total bandwidth.
    best: List[Ring] = []
    for prefer in ("scarcity", "bandwidth", "id"):
        rings = _peel_rings(hardware, verts, prefer)
        if sum(r.bottleneck_gbps for r in rings) > sum(
            r.bottleneck_gbps for r in best
        ):
            best = rings
    if not best:
        best = [Ring(order=verts, bottleneck_gbps=pcie_bandwidth_gbps, uses_pcie=True)]
    return RingDecomposition(gpus=verts, rings=tuple(best))
