"""Collective-communication cost models (rings *and* trees, §3.1).

"NCCL handles collective communications by building rings or trees and
utilizes them depending on the data transfer size" — rings amortise
bandwidth for large buffers, trees cut latency for small ones.  This
module provides alpha–beta cost functions for the common collectives
over an allocation's measured topology, including the size-based
algorithm switch, so workload models and examples can reason about
individual operations rather than just the saturated all-reduce used by
the EffBW microbenchmark.

Costs are per call, in seconds, for ``k`` ranks moving ``S`` bytes at
bus bandwidth ``B`` (GB/s) with per-hop latency ``α``:

=================  =====================================  ==================
collective         ring                                   tree
=================  =====================================  ==================
allreduce          2(k-1)/k · S/B   + 2(k-1)·α            2·S/B + 2⌈log₂k⌉·α
allgather          (k-1)/k · S/B    + (k-1)·α             —
reduce-scatter     (k-1)/k · S/B    + (k-1)·α             —
broadcast          S/B + (k-1)·α  (pipelined chain)       S/B + ⌈log₂k⌉·α
reduce             S/B + (k-1)·α                          S/B + ⌈log₂k⌉·α
=================  =====================================  ==================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..topology.hardware import HardwareGraph
from .microbench import LAUNCH_LATENCY_SECONDS, peak_effective_bandwidth
from .spanning_trees import blink_effective_bandwidth

RING_ALGORITHMS = ("allreduce", "allgather", "reducescatter", "broadcast", "reduce")
TREE_ALGORITHMS = ("allreduce", "broadcast", "reduce")


def _check(k: int, data_bytes: float, bandwidth_gbps: float) -> None:
    if k < 1:
        raise ValueError("need at least one rank")
    if data_bytes < 0:
        raise ValueError("negative data size")
    if k > 1 and bandwidth_gbps <= 0:
        raise ValueError("multi-rank collective needs positive bandwidth")


def ring_cost(
    op: str,
    k: int,
    data_bytes: float,
    bandwidth_gbps: float,
    alpha: float = LAUNCH_LATENCY_SECONDS,
) -> float:
    """Seconds for one ring-algorithm collective."""
    op = op.lower()
    if op not in RING_ALGORITHMS:
        raise ValueError(f"no ring algorithm for {op!r}")
    _check(k, data_bytes, bandwidth_gbps)
    if k == 1:
        return 0.0
    bps = bandwidth_gbps * 1e9
    if op == "allreduce":
        return 2.0 * (k - 1) / k * data_bytes / bps + 2 * (k - 1) * alpha
    if op in ("allgather", "reducescatter"):
        return (k - 1) / k * data_bytes / bps + (k - 1) * alpha
    # broadcast / reduce: pipelined chain moves the whole buffer once.
    return data_bytes / bps + (k - 1) * alpha


def tree_cost(
    op: str,
    k: int,
    data_bytes: float,
    bandwidth_gbps: float,
    alpha: float = LAUNCH_LATENCY_SECONDS,
) -> float:
    """Seconds for one tree-algorithm collective."""
    op = op.lower()
    if op not in TREE_ALGORITHMS:
        raise ValueError(f"no tree algorithm for {op!r}")
    _check(k, data_bytes, bandwidth_gbps)
    if k == 1:
        return 0.0
    bps = bandwidth_gbps * 1e9
    depth = math.ceil(math.log2(k))
    if op == "allreduce":  # reduce then broadcast down the double tree
        return 2.0 * data_bytes / bps + 2 * depth * alpha
    return data_bytes / bps + depth * alpha


def best_cost(
    op: str,
    k: int,
    data_bytes: float,
    bandwidth_gbps: float,
    alpha: float = LAUNCH_LATENCY_SECONDS,
) -> Tuple[float, str]:
    """(seconds, algorithm) for the faster of ring and tree.

    Reproduces NCCL's behaviour: small transfers pick the tree (latency
    scales with log k, not k), large transfers pick the ring (bandwidth
    term has the (k-1)/k advantage).
    """
    op = op.lower()
    costs = {}
    if op in RING_ALGORITHMS:
        costs["ring"] = ring_cost(op, k, data_bytes, bandwidth_gbps, alpha)
    if op in TREE_ALGORITHMS:
        costs["tree"] = tree_cost(op, k, data_bytes, bandwidth_gbps, alpha)
    if not costs:
        raise ValueError(f"unknown collective {op!r}")
    algo = min(costs, key=costs.get)
    return costs[algo], algo


@dataclass(frozen=True)
class CollectiveEstimate:
    """Cost of one collective on a concrete allocation."""

    op: str
    algorithm: str
    seconds: float
    bandwidth_gbps: float


def collective_on_allocation(
    hardware: HardwareGraph,
    gpus: Sequence[int],
    op: str,
    data_bytes: float,
    use_blink: bool = False,
    alpha: float = LAUNCH_LATENCY_SECONDS,
) -> CollectiveEstimate:
    """Estimate a collective's cost over an allocation's real topology.

    ``use_blink=True`` swaps the NCCL-ring bandwidth model for the
    spanning-tree (Blink) model — relevant on fragmented allocations.
    """
    k = len(set(gpus))
    if k == 1:
        return CollectiveEstimate(op=op, algorithm="none", seconds=0.0,
                                  bandwidth_gbps=0.0)
    bw = (
        blink_effective_bandwidth(hardware, gpus)
        if use_blink
        else peak_effective_bandwidth(hardware, gpus)
    )
    seconds, algo = best_cost(op, k, data_bytes, bw, alpha)
    return CollectiveEstimate(
        op=op, algorithm=algo, seconds=seconds, bandwidth_gbps=bw
    )


def crossover_size(
    k: int, bandwidth_gbps: float, alpha: float = LAUNCH_LATENCY_SECONDS
) -> float:
    """Buffer size (bytes) where ring and tree all-reduce costs cross.

    Below this size the tree wins, above it the ring wins; solving
    ``2(k-1)/k·S/B + 2(k-1)α = 2S/B + 2⌈log₂k⌉α`` for S.  Infinite for
    k ≤ 2 (the algorithms coincide).
    """
    if k <= 2:
        return float("inf")
    depth = math.ceil(math.log2(k))
    lat_gap = 2 * ((k - 1) - depth) * alpha
    bw_gap_per_byte = (2.0 - 2.0 * (k - 1) / k) / (bandwidth_gbps * 1e9)
    return lat_gap / bw_gap_per_byte
