"""Simulated NCCL all-reduce microbenchmark (the paper's EffBW ground truth).

The paper measures an allocation's *effective bandwidth* by running the
NCCL all-reduce microbenchmark on it (section 3.4.1).  With no GPUs, we
simulate the benchmark: ring decomposition (:mod:`repro.comm.rings`)
gives the peak bus bandwidth, and an alpha–beta (latency–bandwidth) cost
model reproduces the data-size dependence of Fig. 2a:

    time(S) = α + S / (η · peak)          per ring traversal
    bw(S)   = S / time(S) = η·peak · S / (S + α·η·peak)

so small transfers are launch-latency bound and *link independent* (all
of Fig. 2a's curves converge at the left), while large transfers approach
η·peak.  η = 0.92 captures protocol overhead (a measured double
NVLink-v2 pair tops out near 46 GB/s, not 50); α = 20 µs per collective.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence, Tuple

from ..topology.hardware import HardwareGraph
from .rings import RingDecomposition, build_rings

#: Fraction of theoretical link bandwidth an all-reduce actually sustains.
PROTOCOL_EFFICIENCY = 0.92

#: Launch + protocol latency of one collective call, seconds.
LAUNCH_LATENCY_SECONDS = 20e-6

#: Data size used when reporting "the" effective bandwidth of an
#: allocation — deep in the saturated regime, like the paper's peak numbers.
SATURATED_SIZE_BYTES = 256 * 2**20


def size_efficiency(
    data_size_bytes: float,
    peak_gbps: float,
    alpha_seconds: float = LAUNCH_LATENCY_SECONDS,
) -> float:
    """Fraction of ``peak_gbps`` achieved at a given transfer size.

    Derived from the alpha–beta model: the half-saturation size is
    ``α · peak`` — faster links need larger transfers to saturate, which is
    exactly the shape of Fig. 2a.
    """
    if data_size_bytes <= 0:
        return 0.0
    half_saturation = alpha_seconds * peak_gbps * 1e9
    return data_size_bytes / (data_size_bytes + half_saturation)


@lru_cache(maxsize=8192)
def _ring_bandwidth(hardware: HardwareGraph, gpus: Tuple[int, ...]) -> float:
    """Memoised peak bus bandwidth of one allocation's ring decomposition.

    The simulators re-measure the same (topology, GPU-set) pairs for
    every job placement — and the ring peel itself reads pairwise link
    properties from the topology's precomputed
    :class:`~repro.topology.linktable.LinkTable` — so repeated
    measurements are a cache hit.  Keyed by graph equality, the cache is
    shared across equal topology instances.
    """
    return build_rings(hardware, gpus).total_bandwidth_gbps


def release_graph_memo() -> None:
    """Drop the ring-bandwidth memo and every graph reference it pins.

    The memo's keys hold :class:`HardwareGraph` instances — and through
    their cached link tables, whatever buffers those tables view.  A
    shard worker whose tables are zero-copy views of a shared-memory
    segment (:mod:`repro.cluster.sharding`) must release those exports
    before the segment can be unmapped, so its teardown calls this
    before closing the mapping.  Purely a lifecycle hook: the next
    measurement simply repopulates the cache.
    """
    _ring_bandwidth.cache_clear()


def peak_effective_bandwidth(
    hardware: HardwareGraph,
    gpus: Iterable[int],
    efficiency: float = PROTOCOL_EFFICIENCY,
) -> float:
    """Saturated all-reduce bus bandwidth of an allocation, in GB/s.

    Single-GPU allocations have no inter-GPU traffic and report 0.
    """
    return _ring_bandwidth(hardware, tuple(sorted(set(gpus)))) * efficiency


def effective_bandwidth(
    hardware: HardwareGraph,
    gpus: Iterable[int],
    data_size_bytes: float = SATURATED_SIZE_BYTES,
    efficiency: float = PROTOCOL_EFFICIENCY,
    alpha_seconds: float = LAUNCH_LATENCY_SECONDS,
) -> float:
    """Simulated NCCL all-reduce bandwidth for an allocation and size."""
    peak = peak_effective_bandwidth(hardware, gpus, efficiency)
    return peak * size_efficiency(data_size_bytes, peak, alpha_seconds)


def bandwidth_sweep(
    hardware: HardwareGraph,
    gpus: Sequence[int],
    data_sizes_bytes: Sequence[float],
) -> Tuple[Tuple[float, float], ...]:
    """(size, bandwidth) series for one allocation — one Fig. 2a curve."""
    peak = peak_effective_bandwidth(hardware, gpus)
    return tuple((s, peak * size_efficiency(s, peak)) for s in data_sizes_bytes)


def allreduce_time_seconds(
    hardware: HardwareGraph,
    gpus: Sequence[int],
    data_size_bytes: float,
    alpha_seconds: float = LAUNCH_LATENCY_SECONDS,
) -> float:
    """Time for one ring all-reduce of ``data_size_bytes`` over ``gpus``.

    Ring all-reduce moves ``2·(k-1)/k`` of the buffer through the
    bottleneck at the allocation's peak bandwidth, plus ``(k-1)`` latency
    hops.  Single-GPU "collectives" are free.
    """
    k = len(set(gpus))
    if k < 2:
        return 0.0
    peak = peak_effective_bandwidth(hardware, gpus)
    if peak <= 0:
        raise ValueError(f"allocation {tuple(gpus)} has zero effective bandwidth")
    volume = 2.0 * (k - 1) / k * data_size_bytes
    return volume / (peak * 1e9) + (k - 1) * alpha_seconds
