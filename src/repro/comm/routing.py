"""Point-to-point routing utilities over hardware graphs.

Small helpers for reasoning about pairwise communication: the widest
(maximum-bottleneck) path between two GPUs restricted to NVLink edges, as
used by re-routing schemes such as WOTIR (paper reference [51]) and by
runtime profiling (section 3.1) to attribute observed traffic to links.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from ..topology.hardware import HardwareGraph
from ..topology.links import LinkType, bandwidth_of, is_nvlink


def widest_nvlink_path(
    hardware: HardwareGraph, src: int, dst: int
) -> Optional[Tuple[Tuple[int, ...], float]]:
    """Maximum-bottleneck path from ``src`` to ``dst`` using NVLink only.

    Returns ``(path, bottleneck_gbps)`` or ``None`` when the two GPUs are
    not NVLink-connected even transitively (traffic must cross the host).
    Implemented as a max-bottleneck variant of Dijkstra.
    """
    if src not in hardware or dst not in hardware:
        raise KeyError(f"unknown GPU pair ({src}, {dst})")
    if src == dst:
        return (src,), float("inf")
    best: Dict[int, float] = {src: float("inf")}
    prev: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(-float("inf"), src)]
    visited = set()
    while heap:
        neg_width, u = heapq.heappop(heap)
        width = -neg_width
        if u in visited:
            continue
        visited.add(u)
        if u == dst:
            path = [dst]
            while path[-1] != src:
                path.append(prev[path[-1]])
            return tuple(reversed(path)), width
        for v in hardware.gpus:
            if v == u or v in visited:
                continue
            link = hardware.link(u, v)
            if not is_nvlink(link):
                continue
            w = min(width, bandwidth_of(link))
            if w > best.get(v, 0.0):
                best[v] = w
                prev[v] = u
                heapq.heappush(heap, (-w, v))
    return None


def pair_bandwidth(hardware: HardwareGraph, u: int, v: int) -> float:
    """Best single-hop bandwidth between two GPUs (direct link, PCIe
    fallback included) — what peer-to-peer cudaMemcpy would see."""
    return hardware.bandwidth(u, v)


def effective_pair_bandwidth(hardware: HardwareGraph, u: int, v: int) -> float:
    """Best achievable P2P bandwidth allowing multi-hop NVLink re-routing.

    The maximum of the direct link and the widest transitive NVLink path;
    never below the direct (PCIe) bandwidth.
    """
    direct = hardware.bandwidth(u, v)
    routed = widest_nvlink_path(hardware, u, v)
    if routed is None:
        return direct
    return max(direct, routed[1])
