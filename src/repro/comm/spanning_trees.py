"""Blink-style spanning-tree collectives (paper reference [67]).

The paper contrasts MAPA with Blink: given a (possibly fragmented)
allocation, Blink *recovers* bandwidth by building packing of spanning
trees over whatever NVLink connectivity exists, instead of requiring a
full NVLink ring like NCCL.  Because links are full duplex, one spanning
tree carries a broadcast/reduce pipeline at the bottleneck link rate, and
edge-disjoint trees stack.

This substrate lets the repository quantify the paper's positioning
("these works seek to optimize bad allocations, while our work seeks to
reduce the number of bad allocations"): the ablation benchmark compares
allocation-time EffBW under the NCCL ring model against Blink's
tree-packing model on the same allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..topology.hardware import HardwareGraph
from ..topology.links import (
    LinkType,
    bandwidth_of,
    channels_of,
    is_nvlink,
    per_channel_bandwidth,
)

Pair = FrozenSet[int]


@dataclass(frozen=True)
class SpanningTree:
    """One tree of the packing: its edges and bottleneck bandwidth."""

    edges: Tuple[Tuple[int, int], ...]
    bottleneck_gbps: float


@dataclass(frozen=True)
class TreePacking:
    """Edge-disjoint spanning trees packed over an allocation."""

    gpus: Tuple[int, ...]
    trees: Tuple[SpanningTree, ...]
    uses_pcie: bool = False

    @property
    def total_bandwidth_gbps(self) -> float:
        return sum(t.bottleneck_gbps for t in self.trees)


def _spanning_tree(
    gpus: Sequence[int], channels: Dict[Pair, int], bw: Dict[Pair, float]
) -> Optional[List[Tuple[int, int]]]:
    """Maximum-bottleneck spanning tree over remaining channels (greedy
    Kruskal on descending bandwidth), or None if disconnected."""
    parent = {g: g for g in gpus}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    edges = sorted(
        (pair for pair, c in channels.items() if c > 0),
        key=lambda p: (-bw[p], tuple(sorted(p))),
    )
    tree: List[Tuple[int, int]] = []
    for pair in edges:
        u, v = sorted(pair)
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            tree.append((u, v))
            if len(tree) == len(gpus) - 1:
                return tree
    return None


def pack_spanning_trees(
    hardware: HardwareGraph,
    gpus: Iterable[int],
    pcie_bandwidth_gbps: float = bandwidth_of(LinkType.PCIE),
) -> TreePacking:
    """Pack edge-disjoint NVLink spanning trees over an allocation.

    Greedy peel: repeatedly extract the max-bottleneck spanning tree from
    the remaining channel multigraph.  When no NVLink spanning tree exists
    at all (NVLink-disconnected allocation), a single host-routed PCIe
    tree is used — Blink also falls back to PCIe for stranded GPUs.
    """
    verts = tuple(sorted(set(gpus)))
    for g in verts:
        if g not in hardware:
            raise KeyError(f"unknown GPU {g}")
    if len(verts) < 2:
        return TreePacking(gpus=verts, trees=())

    channels: Dict[Pair, int] = {}
    bw: Dict[Pair, float] = {}
    for i, u in enumerate(verts):
        for v in verts[i + 1 :]:
            link = hardware.link(u, v)
            if is_nvlink(link):
                key = frozenset((u, v))
                channels[key] = channels_of(link)
                bw[key] = per_channel_bandwidth(link)

    trees: List[SpanningTree] = []
    while True:
        tree = _spanning_tree(verts, channels, bw)
        if tree is None:
            break
        bottleneck = min(bw[frozenset(e)] for e in tree)
        for e in tree:
            channels[frozenset(e)] -= 1
        trees.append(SpanningTree(edges=tuple(tree), bottleneck_gbps=bottleneck))
    if trees:
        return TreePacking(gpus=verts, trees=tuple(trees))
    star = tuple((verts[0], v) for v in verts[1:])
    return TreePacking(
        gpus=verts,
        trees=(SpanningTree(edges=star, bottleneck_gbps=pcie_bandwidth_gbps),),
        uses_pcie=True,
    )


def blink_effective_bandwidth(
    hardware: HardwareGraph,
    gpus: Iterable[int],
    efficiency: float = 0.92,
) -> float:
    """Blink-model effective bandwidth of an allocation, in GB/s.

    Blink searches over transfer plans and never does worse than NCCL's
    ring schedule, so the model takes the better of the (greedy) tree
    packing and the ring decomposition — the greedy tree peel alone can
    strand channels on dense graphs where rings pack perfectly.
    """
    from .rings import build_rings

    verts = tuple(sorted(set(gpus)))
    trees = pack_spanning_trees(hardware, verts).total_bandwidth_gbps
    rings = build_rings(hardware, verts).total_bandwidth_gbps
    return max(trees, rings) * efficiency


def recovery_ratio(hardware: HardwareGraph, gpus: Iterable[int]) -> float:
    """Blink EffBW / NCCL-ring EffBW for one allocation.

    ≥ 1 by construction on NVLink-connected allocations; the gap is the
    bandwidth Blink recovers on fragmented allocations that lack a full
    NVLink ring.
    """
    from .microbench import peak_effective_bandwidth

    ring = peak_effective_bandwidth(hardware, gpus)
    blink = blink_effective_bandwidth(hardware, gpus)
    return blink / ring if ring > 0 else float("inf")
