"""NCCL-like collective communication substrate: ring construction,
all-reduce microbenchmark simulation, and point-to-point routing."""

from .rings import Ring, RingDecomposition, build_rings
from .microbench import (
    LAUNCH_LATENCY_SECONDS,
    PROTOCOL_EFFICIENCY,
    SATURATED_SIZE_BYTES,
    allreduce_time_seconds,
    bandwidth_sweep,
    effective_bandwidth,
    peak_effective_bandwidth,
    size_efficiency,
)
from .routing import effective_pair_bandwidth, pair_bandwidth, widest_nvlink_path
from .collectives import (
    CollectiveEstimate,
    best_cost,
    collective_on_allocation,
    crossover_size,
    ring_cost,
    tree_cost,
)
from .spanning_trees import (
    SpanningTree,
    TreePacking,
    blink_effective_bandwidth,
    pack_spanning_trees,
    recovery_ratio,
)

__all__ = [
    "Ring",
    "RingDecomposition",
    "build_rings",
    "LAUNCH_LATENCY_SECONDS",
    "PROTOCOL_EFFICIENCY",
    "SATURATED_SIZE_BYTES",
    "allreduce_time_seconds",
    "bandwidth_sweep",
    "effective_bandwidth",
    "peak_effective_bandwidth",
    "size_efficiency",
    "effective_pair_bandwidth",
    "pair_bandwidth",
    "widest_nvlink_path",
    "CollectiveEstimate",
    "best_cost",
    "collective_on_allocation",
    "crossover_size",
    "ring_cost",
    "tree_cost",
    "SpanningTree",
    "TreePacking",
    "blink_effective_bandwidth",
    "pack_spanning_trees",
    "recovery_ratio",
]
