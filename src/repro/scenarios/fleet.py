"""Heterogeneous fleet specifications.

The multi-server scheduler takes a plain list of
:class:`~repro.topology.hardware.HardwareGraph` servers; a
:class:`FleetSpec` is the declarative, hashable description of that
list — ordered ``(topology, count)`` groups, e.g. 40 DGX-1V + 16
DGX-1P + 8 NVSwitch DGX-2 behind one queue.

Building a thousand-server fleet must not build a thousand link tables:
:meth:`FleetSpec.build` instantiates **one** graph per distinct
topology name and reuses that instance for every server of the group
(hardware graphs are immutable, and per-server mutable state lives in
each server's own :class:`~repro.allocator.state.AllocationState`, so
sharing is safe).  Across *differently named* builders with identical
wiring (big-basin and p3dn are DGX-1V clones) the precomputed
:class:`~repro.topology.linktable.LinkTable` is additionally shared,
keyed by :func:`topology_hash` — a stable content hash of the wiring,
not the name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..topology.builders import TOPOLOGY_BUILDERS, by_name
from ..topology.hardware import HardwareGraph


def topology_hash(hardware: HardwareGraph) -> str:
    """Stable content hash of a server's wiring (name-independent).

    Thin functional alias of
    :attr:`~repro.topology.hardware.HardwareGraph.topology_hash` — the
    digest moved onto the graph itself (cached per instance) when the
    scan cache started keying scores by it, but this module's callers
    keep their historical entry point.
    """
    return hardware.topology_hash


@dataclass(frozen=True)
class FleetSpec:
    """Ordered groups of identical servers: ``((topology, count), ...)``.

    Order matters — server indices (and therefore first-fit placement
    and per-server logs) follow group order — so two specs with the
    same groups in different orders are different fleets.
    """

    groups: Tuple[Tuple[str, int], ...]

    def __post_init__(self) -> None:
        """Normalise to tuples and validate names and counts."""
        groups = tuple((str(name), int(count)) for name, count in self.groups)
        object.__setattr__(self, "groups", groups)
        if not groups:
            raise ValueError("fleet needs at least one server group")
        for name, count in groups:
            if name not in TOPOLOGY_BUILDERS:
                known = ", ".join(sorted(TOPOLOGY_BUILDERS))
                raise ValueError(f"unknown topology {name!r}; known: {known}")
            if count < 1:
                raise ValueError(f"group {name!r}: count must be ≥ 1")

    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        """Total servers across all groups."""
        return sum(count for _, count in self.groups)

    @property
    def topologies(self) -> Tuple[str, ...]:
        """Per-server topology names, in server-index order."""
        return tuple(
            name for name, count in self.groups for _ in range(count)
        )

    def min_gpus_per_server(self) -> int:
        """Smallest server size in the fleet (bounds portable requests)."""
        return min(by_name(name).num_gpus for name, _ in self.groups)

    def max_gpus_per_server(self) -> int:
        """Largest server size in the fleet."""
        return max(by_name(name).num_gpus for name, _ in self.groups)

    # ------------------------------------------------------------------ #
    def build(self) -> List[HardwareGraph]:
        """The concrete server list, with maximal structure sharing.

        One :class:`HardwareGraph` instance per distinct topology name
        (shared by every server of that group), and one
        :class:`~repro.topology.linktable.LinkTable` per distinct
        :func:`topology_hash` (shared even across names): a
        1000-server DGX-V fleet builds the 64-entry table exactly once.
        """
        by_topology: Dict[str, HardwareGraph] = {}
        table_by_hash: Dict[str, HardwareGraph] = {}
        servers: List[HardwareGraph] = []
        for name, count in self.groups:
            hardware = by_topology.get(name)
            if hardware is None:
                hardware = by_name(name)
                wiring = topology_hash(hardware)
                canonical = table_by_hash.get(wiring)
                if canonical is None:
                    table_by_hash[wiring] = hardware
                else:
                    hardware.adopt_link_table(canonical.link_table)
                by_topology[name] = hardware
            servers.extend([hardware] * count)
        return servers

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (cache-hash contribution of fleet scenarios)."""
        return {"groups": [[name, count] for name, count in self.groups]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetSpec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        return cls(
            groups=tuple((g[0], g[1]) for g in payload["groups"])
        )

    @classmethod
    def parse(cls, text: str) -> "FleetSpec":
        """Parse the CLI form ``"topo:count,topo:count,…"``.

        A bare ``"topo"`` means one server; e.g.
        ``"dgx1-v100:40,dgx1-p100:16,dgx2:8"`` is a 64-server fleet.
        """
        groups: List[Tuple[str, int]] = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            name, sep, raw = item.partition(":")
            if sep and not raw:
                raise ValueError(f"bad fleet group {item!r}")
            try:
                count = int(raw) if sep else 1
            except ValueError:
                raise ValueError(
                    f"bad fleet group {item!r}; expected topo[:count]"
                ) from None
            groups.append((name.strip(), count))
        if not groups:
            raise ValueError(f"empty fleet spec {text!r}")
        return cls(groups=tuple(groups))

    def label(self) -> str:
        """Compact human-readable form (``40×dgx1-v100 + 8×dgx2``)."""
        return " + ".join(f"{count}×{name}" for name, count in self.groups)


def mixed_fleet(num_servers: int = 64) -> FleetSpec:
    """A representative heterogeneous fleet of ``num_servers`` servers.

    Roughly 5/8 DGX-1V (hybrid mesh), 1/4 DGX-1P (NVLink-v1) and the
    rest NVSwitch DGX-2 — three very different fabrics behind one
    queue, the shape the fleet-scale benchmark replays.
    """
    if num_servers < 3:
        raise ValueError("mixed fleet needs at least 3 servers")
    num_p100 = max(1, num_servers // 4)
    num_dgx2 = max(1, num_servers // 8)
    num_v100 = num_servers - num_p100 - num_dgx2
    return FleetSpec(
        groups=(
            ("dgx1-v100", num_v100),
            ("dgx1-p100", num_p100),
            ("dgx2", num_dgx2),
        )
    )
