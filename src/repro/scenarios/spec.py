"""Declarative scenario specifications.

A :class:`ScenarioSpec` is to generated scenarios what
:class:`~repro.experiments.spec.TraceSpec` is to the paper's traces: a
frozen value object that *describes* a trace (arrival process × job mix
× length × seed) and can deterministically :meth:`~ScenarioSpec.build`
it.  The two are deliberately interchangeable — both expose
``resolve(num_gpus)`` / ``build()`` / ``to_dict()`` — so a scenario
drops into :class:`~repro.experiments.spec.ExperimentSpec` grids, the
parallel sweep runner and the content-addressed result cache without
either layer knowing which kind of trace it is sweeping.

Determinism contract: :meth:`ScenarioSpec.build` seeds one fresh
:class:`numpy.random.Generator` from the spec's seed and threads it
through the mix and the arrival process in a fixed draw order.  Nothing
reads or writes numpy's global RNG, so the same spec builds the same
trace in any process — the cross-process property the hypothesis suite
pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

import numpy as np

from ..workloads.catalog import get_workload
from ..workloads.jobs import Job, JobFile
from .arrivals import ArrivalProcess, BatchArrivals, arrival_from_dict
from .dynamics import DynamicsSpec
from .mixes import JobMix, paper_mix


def generate_scenario(
    num_jobs: int,
    mix: JobMix,
    arrival: ArrivalProcess,
    rng: np.random.Generator,
) -> JobFile:
    """Generate a scenario trace from an explicit generator.

    The stochastic core of the subsystem: draw the job mix, then the
    submit times, from the one generator, in that fixed order.  Job ids
    are 1-based submission-order indices, matching the paper's traces.

    Post-processing is vectorised: the catalog is consulted once per
    *distinct* workload (not once per job) and the numeric columns
    convert to native Python values through one ``tolist`` each —
    ``ndarray.tolist`` yields exactly the ints/floats the historical
    per-element ``int(...)``/``float(...)`` conversions did, so traces
    (and every cache hash derived from them) are byte-identical.
    """
    names, sizes = mix.sample(num_jobs, rng)
    submits = arrival.sample(num_jobs, rng)
    catalog = {name: get_workload(name) for name in set(names)}
    jobs = [
        Job(
            job_id=i + 1,
            workload=workload.name,
            num_gpus=gpus,
            pattern=workload.pattern,
            bandwidth_sensitive=workload.bandwidth_sensitive,
            submit_time=submit,
        )
        for i, (workload, gpus, submit) in enumerate(
            zip(
                (catalog[name] for name in names),
                np.asarray(sizes).tolist(),
                np.asarray(submits, dtype=np.float64).tolist(),
            )
        )
    ]
    return JobFile(jobs)


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of a generated scenario trace.

    Parameters
    ----------
    num_jobs:
        Trace length.
    seed:
        Seed of the single :class:`numpy.random.Generator` every draw
        flows through.
    arrival:
        Arrival process (default: the paper's batch submission).
    mix:
        Workload × GPU-size mix (default: the paper's evaluation mix).
    name:
        Cosmetic label for CLI output; deliberately excluded from
        :meth:`to_dict` so renaming a scenario never invalidates cached
        sweep cells.
    dynamics:
        Optional fleet-dynamics axis (failures / autoscale /
        preemption).  ``None`` — the static-fleet default — contributes
        *nothing* to :meth:`to_dict`, so every pre-dynamics cache hash
        is preserved.
    """

    num_jobs: int = 300
    seed: int = 2021
    arrival: ArrivalProcess = field(default_factory=BatchArrivals)
    mix: JobMix = field(default_factory=paper_mix)
    name: str = "scenario"
    dynamics: Optional[DynamicsSpec] = None

    def __post_init__(self) -> None:
        """Validate the trace length."""
        if self.num_jobs < 1:
            raise ValueError("num_jobs must be ≥ 1")

    # ------------------------------------------------------------------ #
    # the TraceSpec-compatible surface (grids, sweeps, cache)
    # ------------------------------------------------------------------ #
    def resolve(self, num_gpus: int) -> "ScenarioSpec":
        """Clamp the GPU-size mix to a server's GPU count."""
        resolved = self.mix.resolve(num_gpus)
        if resolved is self.mix:
            return self
        return replace(self, mix=resolved)

    def rng(self) -> np.random.Generator:
        """A fresh generator seeded for this scenario."""
        return np.random.default_rng(self.seed)

    def build(self, rng: Optional[np.random.Generator] = None) -> JobFile:
        """Generate the concrete trace this spec describes.

        An explicit ``rng`` (e.g. one shared across a family of
        scenarios) overrides the spec's own seed.
        """
        return generate_scenario(
            self.num_jobs,
            self.mix,
            self.arrival,
            self.rng() if rng is None else rng,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, the scenario's contribution to cell hashes.

        Starts with ``"kind": "scenario"`` so a scenario can never
        hash-collide with a :class:`~repro.experiments.spec.TraceSpec`
        describing superficially similar parameters.  The ``dynamics``
        axis appears only when set, so static-fleet specs hash exactly
        as they always have and no cached sweep cell is invalidated.
        """
        payload = {
            "kind": "scenario",
            "num_jobs": self.num_jobs,
            "seed": self.seed,
            "arrival": self.arrival.to_dict(),
            "mix": self.mix.to_dict(),
        }
        if self.dynamics is not None:
            payload["dynamics"] = self.dynamics.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        if payload.get("kind") != "scenario":
            raise ValueError(f"not a scenario payload: {payload.get('kind')!r}")
        dynamics = payload.get("dynamics")
        return cls(
            num_jobs=payload["num_jobs"],
            seed=payload["seed"],
            arrival=arrival_from_dict(payload["arrival"]),
            mix=JobMix.from_dict(payload["mix"]),
            dynamics=(
                None if dynamics is None else DynamicsSpec.from_dict(dynamics)
            ),
        )

    # ------------------------------------------------------------------ #
    @property
    def max_gpus(self) -> int:
        """Largest GPU request this scenario can produce."""
        return self.mix.max_gpus

    def describe(self) -> str:
        """One-line human-readable summary."""
        rate = self.arrival.mean_rate()
        rate_text = "batch (t=0)" if rate == float("inf") else f"~{rate:.3g} jobs/s"
        text = (
            f"{self.name}: {self.num_jobs} jobs, seed {self.seed}, "
            f"{self.arrival.kind} arrivals ({rate_text}), "
            f"{len(self.mix.workloads)} workloads, "
            f"sizes {min(self.mix.gpu_sizes)}–{max(self.mix.gpu_sizes)}"
        )
        if self.dynamics is not None and not self.dynamics.is_empty():
            text += f"; {self.dynamics.describe()}"
        return text
