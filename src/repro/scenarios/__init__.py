"""Stochastic scenario generation: arrivals × job mixes × fleets.

The paper's evaluation replays a handful of fixed, batch-arrival DGX
traces.  This package is the scenario-supply subsystem that grows that
into "as many scenarios as you can imagine": declarative, seeded
scenario specs that compose

* an **arrival process** (:mod:`repro.scenarios.arrivals`): batch,
  Poisson, diurnal (non-homogeneous Poisson) or bursty MMPP;
* a **job mix** (:mod:`repro.scenarios.mixes`): workload and GPU-size
  distributions, with presets fit to the paper's trace statistics in
  :mod:`repro.experiments.presets`;
* a **fleet** (:mod:`repro.scenarios.fleet`): heterogeneous
  multi-server clusters that share one
  :class:`~repro.topology.linktable.LinkTable` per distinct topology;
* **fleet dynamics** (:mod:`repro.scenarios.dynamics`): seeded chaos —
  server failure/repair, autoscale grow/shrink and job preemption —
  injected into a replay as first-class events.

Every random draw flows through one explicit
:class:`numpy.random.Generator` seeded from the spec — no module-level
RNG state anywhere — so a :class:`~repro.scenarios.spec.ScenarioSpec`
is a pure value: same spec, same trace, byte-identical simulation logs,
across processes and machines.  That purity is what lets scenarios
plug into :class:`~repro.experiments.spec.ExperimentSpec` grids and the
content-addressed sweep cache exactly like the paper's traces.
"""

from .arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    BatchArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    arrival_from_dict,
)
from .dynamics import (
    CASUALTY_POLICIES,
    VICTIM_POLICIES,
    DynamicsSpec,
    FleetEvent,
    dynamics_from_dict,
)
from .fleet import FleetSpec, mixed_fleet, topology_hash
from .mixes import (
    MIX_PRESETS,
    JobMix,
    heavy_mix,
    ml_mix,
    mix_by_name,
    paper_mix,
)
from .spec import ScenarioSpec, generate_scenario

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "BatchArrivals",
    "PoissonArrivals",
    "DiurnalArrivals",
    "MMPPArrivals",
    "arrival_from_dict",
    "CASUALTY_POLICIES",
    "VICTIM_POLICIES",
    "DynamicsSpec",
    "FleetEvent",
    "dynamics_from_dict",
    "FleetSpec",
    "mixed_fleet",
    "topology_hash",
    "MIX_PRESETS",
    "JobMix",
    "paper_mix",
    "ml_mix",
    "heavy_mix",
    "mix_by_name",
    "ScenarioSpec",
    "generate_scenario",
]
