"""Job mixes: workload and GPU-size distributions for scenarios.

A :class:`JobMix` is the scenario-side generalisation of the paper's
"jobs configuration" (section 4): which workloads a trace draws from
(with weights) and how many GPUs each job requests (with weights).
Because every workload in :mod:`repro.workloads.catalog` carries
calibrated per-iteration compute/communication costs and iteration
counts, the workload weights *are* the duration mix — weighting toward
VGG-16/ResNet-50 produces long, bandwidth-hungry jobs, weighting toward
Cusimann/GMM produces short insensitive fillers.

The presets anchor to the paper's trace statistics centralised in
:mod:`repro.experiments.presets`: :func:`paper_mix` is exactly the
evaluation trace's distribution (uniform over the nine workloads,
uniform 1–5 GPUs), so a scenario with batch arrivals and the paper mix
is statistically the paper's own trace.

All sampling flows through the explicit
:class:`numpy.random.Generator` a caller passes in — mixes own no RNG
state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..experiments.presets import PAPER_MAX_GPUS, PAPER_MIN_GPUS
from ..workloads.catalog import ML_NETWORKS, WORKLOADS, get_workload


def _normalised(weights: Sequence[float], count: int, what: str) -> Tuple[float, ...]:
    """Validate ``weights`` (length, non-negativity, mass) and normalise."""
    if len(weights) != count:
        raise ValueError(f"{what}: {len(weights)} weights for {count} entries")
    if any(w < 0 for w in weights):
        raise ValueError(f"{what}: negative weight")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError(f"{what}: weights sum to zero")
    return tuple(w / total for w in weights)


@dataclass(frozen=True)
class JobMix:
    """Declarative workload × GPU-size distribution.

    Parameters
    ----------
    workloads:
        Workload names to draw from (validated against the catalog).
    workload_weights:
        Relative draw weights, one per workload; ``None`` means uniform.
        Weights are normalised, so ``(2, 1, 1)`` and ``(0.5, 0.25,
        0.25)`` are the same mix (and hash identically).
    gpu_sizes:
        The GPU request sizes jobs may ask for.
    gpu_weights:
        Relative weights per size; ``None`` means uniform (the paper's
        Philly-motivated choice).
    """

    workloads: Tuple[str, ...]
    workload_weights: Optional[Tuple[float, ...]] = None
    gpu_sizes: Tuple[int, ...] = tuple(
        range(PAPER_MIN_GPUS, PAPER_MAX_GPUS + 1)
    )
    gpu_weights: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        """Normalise tuples, validate names, sizes and weights."""
        object.__setattr__(self, "workloads", tuple(self.workloads))
        object.__setattr__(self, "gpu_sizes", tuple(self.gpu_sizes))
        if not self.workloads:
            raise ValueError("job mix needs at least one workload")
        for name in self.workloads:
            get_workload(name)  # validate early
        if len(set(self.workloads)) != len(self.workloads):
            raise ValueError("duplicate workload in mix")
        if not self.gpu_sizes:
            raise ValueError("job mix needs at least one GPU size")
        if any(s < 1 for s in self.gpu_sizes):
            raise ValueError("GPU sizes must be ≥ 1")
        if len(set(self.gpu_sizes)) != len(self.gpu_sizes):
            raise ValueError("duplicate GPU size in mix")
        if self.workload_weights is not None:
            object.__setattr__(
                self,
                "workload_weights",
                _normalised(
                    self.workload_weights, len(self.workloads), "workload_weights"
                ),
            )
        if self.gpu_weights is not None:
            object.__setattr__(
                self,
                "gpu_weights",
                _normalised(self.gpu_weights, len(self.gpu_sizes), "gpu_weights"),
            )

    # ------------------------------------------------------------------ #
    @property
    def max_gpus(self) -> int:
        """Largest GPU request this mix can produce."""
        return max(self.gpu_sizes)

    def resolve(self, num_gpus: int) -> "JobMix":
        """Clamp the size distribution to a server's GPU count.

        Sizes above ``num_gpus`` are dropped and the remaining weights
        renormalised — the scenario analogue of
        :meth:`repro.experiments.spec.TraceSpec.resolve`.
        """
        if self.max_gpus <= num_gpus:
            return self
        keep = [i for i, s in enumerate(self.gpu_sizes) if s <= num_gpus]
        weights = (
            None
            if self.gpu_weights is None
            else tuple(self.gpu_weights[i] for i in keep)
        )
        # No surviving size — or only zero-weight survivors, which the
        # mix would never actually draw — both mean the mix cannot
        # produce a job that fits this server.
        if not keep or (weights is not None and sum(weights) <= 0):
            raise ValueError(
                f"no GPU size in {self.gpu_sizes} (with nonzero weight) "
                f"fits a {num_gpus}-GPU server"
            )
        sizes = tuple(self.gpu_sizes[i] for i in keep)
        return replace(self, gpu_sizes=sizes, gpu_weights=weights)

    def sample(
        self, num_jobs: int, rng: np.random.Generator
    ) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Draw ``num_jobs`` (workload name, GPU count) pairs.

        Workloads are drawn first, sizes second — a fixed draw order, so
        a given generator state always yields the same trace.  Both the
        draws and the post-processing are vectorised: one
        :meth:`~numpy.random.Generator.choice` call per axis, then a
        single fancy-index gather through the name table instead of a
        per-job Python loop (the gather reuses the interned name
        objects, so results are identical to indexing one at a time).
        """
        w_idx = rng.choice(
            len(self.workloads), size=num_jobs, p=self.workload_weights
        )
        sizes = np.asarray(self.gpu_sizes)[
            rng.choice(len(self.gpu_sizes), size=num_jobs, p=self.gpu_weights)
        ]
        name_table = np.asarray(self.workloads, dtype=object)
        names = tuple(name_table[w_idx].tolist())
        return names, sizes

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, the mix's contribution to the cell hash."""
        return {
            "workloads": list(self.workloads),
            "workload_weights": (
                None
                if self.workload_weights is None
                else list(self.workload_weights)
            ),
            "gpu_sizes": list(self.gpu_sizes),
            "gpu_weights": (
                None if self.gpu_weights is None else list(self.gpu_weights)
            ),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobMix":
        """Rebuild a mix from its :meth:`to_dict` form."""
        return cls(
            workloads=tuple(payload["workloads"]),
            workload_weights=(
                None
                if payload.get("workload_weights") is None
                else tuple(payload["workload_weights"])
            ),
            gpu_sizes=tuple(payload["gpu_sizes"]),
            gpu_weights=(
                None
                if payload.get("gpu_weights") is None
                else tuple(payload["gpu_weights"])
            ),
        )


# ---------------------------------------------------------------------- #
# presets, anchored to the paper's trace statistics
# ---------------------------------------------------------------------- #
def paper_mix() -> JobMix:
    """The evaluation trace's distribution: uniform over the nine
    workloads, uniform 1–5 GPU requests (paper section 4)."""
    return JobMix(workloads=tuple(sorted(WORKLOADS)))


def ml_mix() -> JobMix:
    """Only the six Caffe networks of Fig. 5 (uniform)."""
    return JobMix(workloads=tuple(ML_NETWORKS))


def heavy_mix() -> JobMix:
    """A stress mix: bandwidth-sensitive trainers weighted 3:1 over
    insensitive fillers, and request sizes weighted ``1 + size`` (a
    5-GPU request is 3x as likely as a 1-GPU one).

    Useful for fragmentation pressure — most jobs want many GPUs and
    care about which links they get.
    """
    sensitive = tuple(
        name for name in sorted(WORKLOADS) if WORKLOADS[name].bandwidth_sensitive
    )
    insensitive = tuple(
        name
        for name in sorted(WORKLOADS)
        if not WORKLOADS[name].bandwidth_sensitive
    )
    workloads = sensitive + insensitive
    weights = tuple([3.0] * len(sensitive) + [1.0] * len(insensitive))
    sizes = tuple(range(PAPER_MIN_GPUS, PAPER_MAX_GPUS + 1))
    size_weights = tuple(1.0 + float(s) for s in sizes)
    return JobMix(
        workloads=workloads,
        workload_weights=weights,
        gpu_sizes=sizes,
        gpu_weights=size_weights,
    )


#: Named mix presets (CLI choices).
MIX_PRESETS = {
    "paper": paper_mix,
    "ml": ml_mix,
    "heavy": heavy_mix,
}


def mix_by_name(name: str) -> JobMix:
    """Instantiate a preset mix by registry name."""
    try:
        builder = MIX_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(MIX_PRESETS))
        raise ValueError(f"unknown mix {name!r}; known: {known}") from None
    return builder()
