"""Seeded arrival processes for generated scenarios.

Each process is a frozen, declarative value object with one job:
``sample(num_jobs, rng)`` returns the submit times of ``num_jobs`` jobs
as a non-decreasing float array, drawing *only* from the
:class:`numpy.random.Generator` it is handed.  Processes carry no
mutable state and never touch numpy's global RNG, so the same
``(process, seed)`` pair reproduces the same submit times in any
process on any machine — the property the sweep cache and the golden
tests rely on.

The built-in processes cover the fleet-traffic shapes the roadmap asks
for:

``batch``
    Everything at t = 0 — the paper's drain-the-queue setup.
``poisson``
    Memoryless arrivals at a constant rate (the classic open-system
    model; Philly-style cluster traces are near-Poisson at short
    timescales).
``diurnal``
    Non-homogeneous Poisson whose rate swings sinusoidally between a
    trough and a peak once per period — the day/night pattern of
    production fleets.  Sampled by Lewis–Shedler thinning.
``mmpp``
    Two-state Markov-modulated Poisson process: a quiet state and a
    bursty state with exponentially distributed dwell times.  MMPPs are
    the standard model for the over-dispersed, bursty submission
    behaviour real schedulers see.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple, Type

import numpy as np


class ArrivalProcess:
    """Base class: a declarative, seeded submit-time distribution.

    Subclasses implement :meth:`sample` (pure function of ``rng``) and
    :meth:`to_dict` (the process's contribution to a scenario's cache
    hash).  They must be frozen dataclasses so scenario specs stay
    hashable values.
    """

    #: Registry key; subclasses override (``"poisson"``, ``"mmpp"``, …).
    kind: str = "abstract"

    def sample(self, num_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """Submit times for ``num_jobs`` jobs, non-decreasing, seconds."""
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (includes ``kind`` for round-tripping)."""
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run arrival rate in jobs/second (``inf`` for batch)."""
        raise NotImplementedError


@dataclass(frozen=True)
class BatchArrivals(ArrivalProcess):
    """All jobs submitted at t = 0 (the paper's batch trace)."""

    kind = "batch"

    def sample(self, num_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """A zero vector: every job is present before the first event."""
        return np.zeros(num_jobs)

    def mean_rate(self) -> float:
        """Batch submission has no finite rate."""
        return float("inf")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {"kind": self.kind}


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` jobs/second."""

    rate: float = 1.0
    kind = "poisson"

    def __post_init__(self) -> None:
        """Validate the rate."""
        if not self.rate > 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def sample(self, num_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """Cumulative sums of exponential inter-arrival gaps."""
        gaps = rng.exponential(1.0 / self.rate, size=num_jobs)
        return np.cumsum(gaps)

    def mean_rate(self) -> float:
        """The constant rate."""
        return self.rate

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {"kind": self.kind, "rate": self.rate}


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night arrivals (non-homogeneous Poisson).

    The instantaneous rate swings between ``base_rate`` (the trough, at
    t = 0) and ``peak_rate`` (half a period later) once per ``period``
    seconds:

    .. math::

        \\lambda(t) = base + (peak - base)
                      \\cdot \\tfrac{1 - \\cos(2\\pi (t + phase)/period)}{2}

    Sampling uses Lewis–Shedler thinning against the constant majorant
    ``peak_rate``: candidate arrivals are drawn homogeneously at the
    peak rate and accepted with probability ``λ(t)/peak_rate``, which is
    exact and needs nothing but the one shared generator.
    """

    base_rate: float = 0.2
    peak_rate: float = 2.0
    period: float = 86400.0
    phase: float = 0.0

    kind = "diurnal"

    def __post_init__(self) -> None:
        """Validate rates and period."""
        if not self.base_rate > 0:
            raise ValueError(f"base_rate must be > 0, got {self.base_rate}")
        if self.peak_rate < self.base_rate:
            raise ValueError("peak_rate must be ≥ base_rate")
        if not self.period > 0:
            raise ValueError(f"period must be > 0, got {self.period}")

    def rate_at(self, t: float) -> float:
        """The instantaneous arrival rate λ(t)."""
        swing = (self.peak_rate - self.base_rate) / 2.0
        return self.base_rate + swing * (
            1.0 - math.cos(2.0 * math.pi * (t + self.phase) / self.period)
        )

    def sample(self, num_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """Thinning: homogeneous candidates at the peak rate, accepted
        with probability λ(t)/peak."""
        times = np.empty(num_jobs)
        t = 0.0
        accepted = 0
        inv_peak = 1.0 / self.peak_rate
        while accepted < num_jobs:
            t += rng.exponential(inv_peak)
            if rng.random() * self.peak_rate <= self.rate_at(t):
                times[accepted] = t
                accepted += 1
        return times

    def mean_rate(self) -> float:
        """Period-averaged rate: midway between trough and peak."""
        return (self.base_rate + self.peak_rate) / 2.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "kind": self.kind,
            "base_rate": self.base_rate,
            "peak_rate": self.peak_rate,
            "period": self.period,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Bursty two-state Markov-modulated Poisson arrivals.

    The process alternates between a quiet state (``quiet_rate``) and a
    burst state (``burst_rate``); dwell times in each state are
    exponential with means ``quiet_dwell`` / ``burst_dwell`` seconds.
    Within a state arrivals are Poisson at that state's rate.  Sampling
    simulates the competing exponentials exactly — at every step the
    sooner of (next arrival, next state flip) wins — so the draw order
    from the shared generator is deterministic.
    """

    quiet_rate: float = 0.2
    burst_rate: float = 5.0
    quiet_dwell: float = 600.0
    burst_dwell: float = 60.0

    kind = "mmpp"

    def __post_init__(self) -> None:
        """Validate rates and dwell times."""
        for field_name in ("quiet_rate", "burst_rate", "quiet_dwell", "burst_dwell"):
            value = getattr(self, field_name)
            if not value > 0:
                raise ValueError(f"{field_name} must be > 0, got {value}")

    def sample(self, num_jobs: int, rng: np.random.Generator) -> np.ndarray:
        """Exact competing-exponentials simulation of the 2-state MMPP."""
        rates = (self.quiet_rate, self.burst_rate)
        dwells = (self.quiet_dwell, self.burst_dwell)
        times = np.empty(num_jobs)
        t = 0.0
        state = 0
        accepted = 0
        next_flip = t + rng.exponential(dwells[state])
        while accepted < num_jobs:
            next_arrival = t + rng.exponential(1.0 / rates[state])
            if next_arrival <= next_flip:
                t = next_arrival
                times[accepted] = t
                accepted += 1
            else:
                t = next_flip
                state = 1 - state
                next_flip = t + rng.exponential(dwells[state])
        return times

    def mean_rate(self) -> float:
        """Dwell-weighted long-run arrival rate."""
        total = self.quiet_dwell + self.burst_dwell
        return (
            self.quiet_rate * self.quiet_dwell
            + self.burst_rate * self.burst_dwell
        ) / total

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "kind": self.kind,
            "quiet_rate": self.quiet_rate,
            "burst_rate": self.burst_rate,
            "quiet_dwell": self.quiet_dwell,
            "burst_dwell": self.burst_dwell,
        }


#: Registry of arrival-process kinds (CLI choices, dict round-trips).
ARRIVAL_KINDS: Dict[str, Type[ArrivalProcess]] = {
    cls.kind: cls
    for cls in (BatchArrivals, PoissonArrivals, DiurnalArrivals, MMPPArrivals)
}


def arrival_from_dict(payload: Mapping[str, Any]) -> ArrivalProcess:
    """Rebuild an arrival process from its :meth:`~ArrivalProcess.to_dict`."""
    data = dict(payload)
    kind = data.pop("kind", None)
    try:
        cls = ARRIVAL_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(ARRIVAL_KINDS))
        raise ValueError(f"unknown arrival kind {kind!r}; known: {known}") from None
    return cls(**data)
