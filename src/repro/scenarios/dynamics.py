"""Seeded fleet-dynamics event streams (failures, autoscale, preemption).

A :class:`DynamicsSpec` is the chaos axis of a scenario: a frozen,
declarative description of the fleet *mutations* a replay injects —
server failure/repair cycles, autoscale shrink (drain-then-remove) and
grow (add-with-shared-wiring), and job preemption with requeue.  Like
an :class:`~repro.scenarios.arrivals.ArrivalProcess` it is a pure value
object: :meth:`DynamicsSpec.build` seeds one fresh
:class:`numpy.random.Generator` from the spec's own seed and draws the
whole event stream in a fixed order, so the same spec produces the same
:class:`FleetEvent` sequence in any process — the property the sweep
cache, the golden chaos tables and the sharded-identity gate rely on.

Event semantics (implemented by the simulation cores and the
:class:`~repro.cluster.scheduler.MultiServerScheduler`):

``fail``
    The server goes down instantly.  Every allocation on it dies; the
    spec's *casualty policy* decides whether the victims requeue at the
    front of the queue in allocation order (``casualty="requeue"``, the
    default) or are dropped from the run entirely (``casualty="kill"``).
    Each failure is paired with a ``repair`` drawn an exponential
    downtime later.
``repair``
    The failed server comes back empty and schedulable.
``remove``
    Autoscale shrink: the server is drained — it accepts no new
    placements, running jobs finish naturally — and leaves the fleet.
``add``
    Autoscale grow: a new server of ``topology`` joins, wired through
    the fleet's shared :class:`~repro.topology.linktable.LinkTable`
    (the ``adopt_link_table`` path), immediately schedulable.
``preempt``
    One running job is evicted and requeued at the *back* of the queue.
    The victim is chosen by the spec's victim policy over the running
    jobs ordered by ``(start_time, job_id)``: ``youngest`` (latest
    start), ``oldest`` (earliest start) or ``rank`` (the event's
    ``victim_rank`` modulo the number of running jobs).

Determinism contract: fleet events are injected into the engines at
:data:`~repro.sim.engine.FLEET_PRIORITY`, so a mutation that collides
with a job event's timestamp always applies *first* — identically on
the columnar and object cores and at every shard count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

#: Actions a :class:`FleetEvent` can carry, in no particular order.
ACTIONS = ("fail", "repair", "remove", "add", "preempt")

#: Casualty policies for allocations on a failed server.
CASUALTY_POLICIES = ("requeue", "kill")

#: Victim-selection policies for preemption events.
VICTIM_POLICIES = ("youngest", "oldest", "rank")


@dataclass(frozen=True)
class FleetEvent:
    """One concrete fleet mutation at an absolute time.

    ``server`` indexes the *initial* fleet (adds never target a server;
    preemptions pick their victim by policy, not by server).
    ``topology`` names the hardware graph an ``add`` instantiates;
    ``victim_rank`` feeds the ``rank`` victim policy.
    """

    time: float
    action: str
    server: int = -1
    topology: str = ""
    victim_rank: int = 0

    def __post_init__(self) -> None:
        """Validate action and time."""
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fleet action {self.action!r}")
        if self.time < 0:
            raise ValueError(f"fleet event time must be ≥ 0, got {self.time}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "time": self.time,
            "action": self.action,
            "server": self.server,
            "topology": self.topology,
            "victim_rank": self.victim_rank,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FleetEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        return cls(**dict(payload))


@dataclass(frozen=True)
class DynamicsSpec:
    """Declarative fleet-dynamics axis of a scenario.

    Parameters
    ----------
    seed:
        Seed of the dedicated dynamics generator.  Independent of the
        scenario's trace seed, so the same job stream can be replayed
        under different chaos and vice versa.
    horizon:
        Mutations are drawn uniformly over ``[0, horizon)`` seconds.
    failures:
        Number of failure/repair cycles.  Each failure picks a server
        uniformly from the initial fleet and repairs an
        exponentially-distributed downtime later (mean
        ``mean_downtime``).
    mean_downtime:
        Mean seconds between a failure and its repair.
    grows:
        Autoscale additions.  Each adds one server of ``grow_topology``
        (or a uniformly drawn initial-fleet topology when empty).
    shrinks:
        Autoscale removals (drain-then-remove of a uniformly drawn
        initial-fleet server).
    grow_topology:
        Hardware-graph name the grown servers use; empty means "draw
        from the initial fleet's topologies".
    preemptions:
        Number of single-job eviction events.
    casualty:
        What happens to allocations on a failed server: ``"requeue"``
        (front of queue, allocation order) or ``"kill"`` (dropped).
    victim:
        Preemption victim policy: ``"youngest"``, ``"oldest"`` or
        ``"rank"``.
    """

    seed: int = 7
    horizon: float = 600.0
    failures: int = 0
    mean_downtime: float = 60.0
    grows: int = 0
    shrinks: int = 0
    grow_topology: str = ""
    preemptions: int = 0
    casualty: str = "requeue"
    victim: str = "youngest"

    def __post_init__(self) -> None:
        """Validate counts and policies."""
        if not self.horizon > 0:
            raise ValueError(f"horizon must be > 0, got {self.horizon}")
        if not self.mean_downtime > 0:
            raise ValueError(
                f"mean_downtime must be > 0, got {self.mean_downtime}"
            )
        for field_name in ("failures", "grows", "shrinks", "preemptions"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be ≥ 0, got {value}")
        if self.casualty not in CASUALTY_POLICIES:
            raise ValueError(
                f"casualty must be one of {CASUALTY_POLICIES}, "
                f"got {self.casualty!r}"
            )
        if self.victim not in VICTIM_POLICIES:
            raise ValueError(
                f"victim must be one of {VICTIM_POLICIES}, got {self.victim!r}"
            )

    @property
    def total_events(self) -> int:
        """Events :meth:`build` emits (failures count twice: +repair)."""
        return (
            2 * self.failures + self.grows + self.shrinks + self.preemptions
        )

    def is_empty(self) -> bool:
        """True when the spec describes no mutations at all."""
        return self.total_events == 0

    # ------------------------------------------------------------------ #
    # event-stream generation
    # ------------------------------------------------------------------ #
    def build(self, topologies: Sequence[str]) -> Tuple[FleetEvent, ...]:
        """The concrete event stream over an initial fleet.

        ``topologies`` is the per-server hardware-graph name of the
        initial fleet (``FleetSpec.topologies``); its length fixes the
        server-index draw range and its values feed topology draws for
        grows.  Draws flow through one fresh generator in a fixed order
        — failures, then shrinks, then grows, then preemptions — and
        the stream is stably sorted by time, so the same
        ``(spec, fleet)`` pair yields the same stream everywhere.
        """
        num_servers = len(topologies)
        if num_servers == 0:
            raise ValueError("cannot build dynamics over an empty fleet")
        rng = np.random.default_rng(self.seed)
        events: List[FleetEvent] = []
        for _ in range(self.failures):
            server = int(rng.integers(num_servers))
            t = float(rng.uniform(0.0, self.horizon))
            downtime = float(rng.exponential(self.mean_downtime))
            events.append(FleetEvent(t, "fail", server=server))
            events.append(FleetEvent(t + downtime, "repair", server=server))
        for _ in range(self.shrinks):
            server = int(rng.integers(num_servers))
            t = float(rng.uniform(0.0, self.horizon))
            events.append(FleetEvent(t, "remove", server=server))
        for _ in range(self.grows):
            if self.grow_topology:
                topology = self.grow_topology
            else:
                topology = topologies[int(rng.integers(num_servers))]
            t = float(rng.uniform(0.0, self.horizon))
            events.append(FleetEvent(t, "add", topology=topology))
        for _ in range(self.preemptions):
            t = float(rng.uniform(0.0, self.horizon))
            rank = int(rng.integers(1 << 16))
            events.append(FleetEvent(t, "preempt", victim_rank=rank))
        events.sort(key=lambda e: e.time)  # stable: draw order breaks ties
        return tuple(events)

    # ------------------------------------------------------------------ #
    # hashing / round-trips
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form, the axis's contribution to cell hashes."""
        return {
            "kind": "dynamics",
            "seed": self.seed,
            "horizon": self.horizon,
            "failures": self.failures,
            "mean_downtime": self.mean_downtime,
            "grows": self.grows,
            "shrinks": self.shrinks,
            "grow_topology": self.grow_topology,
            "preemptions": self.preemptions,
            "casualty": self.casualty,
            "victim": self.victim,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DynamicsSpec":
        """Rebuild a spec from its :meth:`to_dict` form."""
        data = dict(payload)
        kind = data.pop("kind", "dynamics")
        if kind != "dynamics":
            raise ValueError(f"not a dynamics payload: {kind!r}")
        return cls(**data)

    @classmethod
    def parse(cls, text: str) -> "DynamicsSpec":
        """Parse the CLI form ``key=value[,key=value...]``.

        Keys are the dataclass fields; integer/float fields are
        converted, string fields pass through.  Example::

            failures=3,grows=1,shrinks=1,preemptions=5,horizon=400
        """
        spec = cls()
        if not text.strip():
            return spec
        int_fields = {"seed", "failures", "grows", "shrinks", "preemptions"}
        float_fields = {"horizon", "mean_downtime"}
        str_fields = {"grow_topology", "casualty", "victim"}
        updates: Dict[str, Any] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"bad dynamics item {item!r}: expected key=value"
                )
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key in int_fields:
                updates[key] = int(value)
            elif key in float_fields:
                updates[key] = float(value)
            elif key in str_fields:
                updates[key] = value
            else:
                known = ", ".join(
                    sorted(int_fields | float_fields | str_fields)
                )
                raise ValueError(
                    f"unknown dynamics key {key!r}; known: {known}"
                )
        return replace(spec, **updates)

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        if self.failures:
            parts.append(
                f"{self.failures} failure/repair "
                f"(mean downtime {self.mean_downtime:g}s, {self.casualty})"
            )
        if self.shrinks:
            parts.append(f"{self.shrinks} shrink")
        if self.grows:
            topo = self.grow_topology or "fleet-drawn"
            parts.append(f"{self.grows} grow ({topo})")
        if self.preemptions:
            parts.append(f"{self.preemptions} preempt ({self.victim})")
        if not parts:
            return "static fleet (no dynamics)"
        return (
            f"dynamics seed {self.seed}, horizon {self.horizon:g}s: "
            + ", ".join(parts)
        )


def dynamics_from_dict(payload: Mapping[str, Any]) -> DynamicsSpec:
    """Module-level alias matching ``arrival_from_dict``'s shape."""
    return DynamicsSpec.from_dict(payload)
