"""Application topology graphs (paper section 3.1).

An application graph abstracts a multi-accelerator workload: vertices are
the logical accelerator slots the job needs (numbered ``0..k-1``) and edges
mark pairs of slots that communicate.  The paper derives these graphs from
NCCL API usage (collectives build rings and/or trees over the job's GPUs)
or from runtime interconnect profiling; here they are constructed
programmatically by :mod:`repro.appgraph.patterns`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

import networkx as nx

Edge = Tuple[int, int]


class ApplicationGraph:
    """Communication pattern of a multi-accelerator job.

    Parameters
    ----------
    name:
        Pattern name (``"ring"``, ``"tree"``, ...).
    num_gpus:
        Number of accelerator slots; vertices are ``0..num_gpus-1``.
    edges:
        Iterable of vertex pairs that communicate.  Self-loops and
        out-of-range vertices are rejected; duplicates collapse.
    """

    def __init__(self, name: str, num_gpus: int, edges: Iterable[Edge]) -> None:
        if num_gpus < 1:
            raise ValueError("application graph needs at least one GPU slot")
        self.name = name
        self._n = num_gpus
        edge_set: Set[FrozenSet[int]] = set()
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-communication edge on vertex {u}")
            if not (0 <= u < num_gpus and 0 <= v < num_gpus):
                raise ValueError(
                    f"edge ({u}, {v}) out of range for {num_gpus}-GPU pattern"
                )
            edge_set.add(frozenset((u, v)))
        self._edges: Tuple[Tuple[int, int], ...] = tuple(
            sorted(tuple(sorted(e)) for e in edge_set)
        )
        self._adj: Dict[int, Set[int]] = {v: set() for v in range(num_gpus)}
        for u, v in self._edges:
            self._adj[u].add(v)
            self._adj[v].add(u)
        # Hash of the structural identity, computed once: patterns key
        # caches and memo tables all over the hot path, and re-hashing
        # the (possibly large) edge tuple per lookup adds up.
        self._hash = hash((self._n, self._edges))

    # ------------------------------------------------------------------ #
    @property
    def num_gpus(self) -> int:
        """Number of accelerator slots this pattern requires."""
        return self._n

    @property
    def vertices(self) -> range:
        """Slot ids ``0 … num_gpus-1``."""
        return range(self._n)

    @property
    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Sorted tuple of undirected communication edges."""
        return self._edges

    @property
    def num_edges(self) -> int:
        """Number of communication edges."""
        return len(self._edges)

    def neighbors(self, v: int) -> FrozenSet[int]:
        """Vertices that communicate directly with ``v``."""
        return frozenset(self._adj[v])

    def degree(self, v: int) -> int:
        """Number of slots ``v`` communicates with."""
        return len(self._adj[v])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether slots ``u`` and ``v`` communicate directly."""
        return v in self._adj.get(u, ())

    def is_connected(self) -> bool:
        """True if every slot is (transitively) reachable from slot 0.

        Single-GPU patterns are trivially connected.  Patterns of jobs with
        zero inter-GPU communication (e.g. embarrassingly parallel solvers)
        may legitimately be disconnected.
        """
        if self._n == 1:
            return True
        seen = {0}
        frontier = [0]
        while frontier:
            u = frontier.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self._n

    def union(self, other: "ApplicationGraph", name: str | None = None) -> "ApplicationGraph":
        """Edge-union of two patterns over the same slot count.

        NCCL programs mix collectives (rings for large messages, trees for
        small ones); the job's application graph is the union of the graphs
        of every collective it calls (section 3.1).
        """
        if other.num_gpus != self._n:
            raise ValueError("patterns must have the same number of GPU slots")
        return ApplicationGraph(
            name or f"{self.name}+{other.name}",
            self._n,
            list(self._edges) + list(other.edges),
        )

    def relabel(self, mapping: Sequence[int]) -> "ApplicationGraph":
        """Return an isomorphic copy with vertex ``i`` renamed ``mapping[i]``.

        ``mapping`` must be a permutation of ``0..num_gpus-1``.  Useful for
        testing matcher invariance under relabelling.
        """
        if sorted(mapping) != list(range(self._n)):
            raise ValueError("mapping must be a permutation of the slots")
        return ApplicationGraph(
            self.name,
            self._n,
            [(mapping[u], mapping[v]) for u, v in self._edges],
        )

    def degree_sequence(self) -> Tuple[int, ...]:
        """Non-increasing degree sequence (an isomorphism invariant)."""
        return tuple(sorted((len(s) for s in self._adj.values()), reverse=True))

    def to_networkx(self) -> nx.Graph:
        """Export as a :class:`networkx.Graph` over the slots."""
        g = nx.Graph(name=self.name)
        g.add_nodes_from(self.vertices)
        g.add_edges_from(self._edges)
        return g

    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        """Equal iff same slot count and edge set (names ignored)."""
        if not isinstance(other, ApplicationGraph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        """Hash consistent with :meth:`__eq__` (precomputed at init)."""
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ApplicationGraph({self.name!r}, gpus={self._n}, "
            f"edges={len(self._edges)})"
        )
