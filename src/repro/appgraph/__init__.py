"""Application topology graphs and NCCL-style pattern constructors."""

from .application import ApplicationGraph
from .extraction import (
    COLLECTIVE_SHAPES,
    CommCall,
    classify_extracted,
    from_call_log,
    from_traffic_matrix,
)
from .patterns import (
    PATTERN_BUILDERS,
    all_to_all,
    by_name,
    chain,
    from_edges,
    ring,
    ring_tree,
    single,
    star,
    tree,
)

__all__ = [
    "ApplicationGraph",
    "COLLECTIVE_SHAPES",
    "CommCall",
    "classify_extracted",
    "from_call_log",
    "from_traffic_matrix",
    "PATTERN_BUILDERS",
    "all_to_all",
    "by_name",
    "chain",
    "from_edges",
    "ring",
    "ring_tree",
    "single",
    "star",
    "tree",
]
