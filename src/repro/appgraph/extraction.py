"""Application-topology extraction (paper section 3.1, Fig. 9).

The paper describes two ways to obtain a job's application graph:

* **source-code analysis** — multi-GPU communication goes through
  well-defined APIs (NCCL collectives, ``cudaMemcpyPeer``); identifying
  the calls yields the communication pattern.  :func:`from_call_log`
  consumes a log of such calls and builds the union graph, exactly the
  "combining the graph of all NCCL API calls" rule of §3.1.
* **runtime profiling** — per-link traffic counters (``nvidia-smi``
  style) reveal which GPU pairs actually talked.
  :func:`from_traffic_matrix` thresholds a pairwise byte matrix into an
  application graph, avoiding the conservative fully-connected
  assumption for implicit-communication programs (Unified Memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import patterns
from .application import ApplicationGraph

#: NCCL collectives and the shape of the logical topology they induce
#: over the participating ranks (per §3.1's discussion of Fig. 8).
COLLECTIVE_SHAPES: Dict[str, str] = {
    "allreduce": "ring",
    "reducescatter": "ring",
    "allgather": "ring",
    "broadcast": "tree",
    "reduce": "tree",
    "alltoall": "alltoall",
}


@dataclass(frozen=True)
class CommCall:
    """One logged communication call.

    ``op`` is a collective name (see :data:`COLLECTIVE_SHAPES`) or
    ``"p2p"`` for an explicit peer copy, in which case ``src``/``dst``
    identify the two ranks involved.
    """

    op: str
    ranks: Tuple[int, ...]
    bytes: float = 0.0
    src: Optional[int] = None
    dst: Optional[int] = None


def from_call_log(
    calls: Iterable[CommCall],
    num_gpus: int,
    name: str = "extracted",
) -> ApplicationGraph:
    """Union of the topologies induced by every logged call (§3.1).

    Collective calls contribute the canonical shape of their collective
    over the participating ranks (ring for bandwidth-bound collectives,
    tree for latency-bound ones); p2p calls contribute a single edge.
    """
    edges: List[Tuple[int, int]] = []
    for call in calls:
        op = call.op.lower()
        if op == "p2p":
            if call.src is None or call.dst is None:
                raise ValueError("p2p call needs src and dst ranks")
            edges.append((call.src, call.dst))
            continue
        try:
            shape = COLLECTIVE_SHAPES[op]
        except KeyError:
            known = ", ".join(sorted(COLLECTIVE_SHAPES) + ["p2p"])
            raise ValueError(f"unknown op {call.op!r}; known: {known}") from None
        ranks = tuple(call.ranks)
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in collective: {ranks}")
        if any(not 0 <= r < num_gpus for r in ranks):
            raise ValueError(f"rank out of range in {ranks}")
        if len(ranks) < 2:
            continue  # single-rank collective: no communication
        local = patterns.by_name(shape, len(ranks))
        for u, v in local.edges:
            edges.append((ranks[u], ranks[v]))
    return ApplicationGraph(name, num_gpus, edges)


def from_traffic_matrix(
    traffic_bytes: Mapping[Tuple[int, int], float] | Sequence[Sequence[float]],
    num_gpus: int,
    threshold_fraction: float = 0.01,
    name: str = "profiled",
) -> ApplicationGraph:
    """Threshold a pairwise traffic matrix into an application graph.

    Parameters
    ----------
    traffic_bytes:
        Either a dict of unordered pair → bytes, or a square matrix
        (symmetrised by summing both triangles).
    threshold_fraction:
        Pairs carrying less than this fraction of the *busiest* pair's
        traffic are treated as noise and dropped — profiling counters
        pick up stray page migrations that are not part of the pattern.
    """
    pair_bytes: Dict[Tuple[int, int], float] = {}
    if isinstance(traffic_bytes, Mapping):
        for (u, v), b in traffic_bytes.items():
            if u == v:
                raise ValueError(f"self-traffic on rank {u}")
            key = (min(u, v), max(u, v))
            pair_bytes[key] = pair_bytes.get(key, 0.0) + float(b)
    else:
        matrix = traffic_bytes
        if len(matrix) != num_gpus or any(len(row) != num_gpus for row in matrix):
            raise ValueError("matrix must be num_gpus x num_gpus")
        for u in range(num_gpus):
            for v in range(u + 1, num_gpus):
                total = float(matrix[u][v]) + float(matrix[v][u])
                if total > 0:
                    pair_bytes[(u, v)] = total
    for (u, v) in pair_bytes:
        if not (0 <= u < num_gpus and 0 <= v < num_gpus):
            raise ValueError(f"rank pair ({u}, {v}) out of range")
    if not pair_bytes:
        return ApplicationGraph(name, num_gpus, [])
    peak = max(pair_bytes.values())
    cutoff = peak * threshold_fraction
    edges = [pair for pair, b in pair_bytes.items() if b >= cutoff]
    return ApplicationGraph(name, num_gpus, edges)


def classify_extracted(graph: ApplicationGraph) -> str:
    """Name the canonical pattern an extracted graph matches, if any.

    Returns ``"ring"``, ``"chain"``, ``"tree"``, ``"star"``,
    ``"alltoall"``, ``"single"`` or ``"irregular"``.  Comparison is up to
    relabelling (degree-sequence + edge-count fingerprint, exact for
    these tiny shapes, verified by isomorphism for the ambiguous cases).
    """
    k = graph.num_gpus
    if graph.num_edges == 0:
        return "single"
    candidates = {
        "ring": patterns.ring(k),
        "chain": patterns.chain(k),
        "tree": patterns.tree(k),
        "star": patterns.star(k),
        "alltoall": patterns.all_to_all(k),
    }
    from ..matching.isomorphism import adjacency_from_edges, subgraph_monomorphisms

    g_adj = adjacency_from_edges(graph.vertices, graph.edges)
    for label, cand in candidates.items():
        if cand.num_edges != graph.num_edges:
            continue
        if cand.degree_sequence() != graph.degree_sequence():
            continue
        c_adj = adjacency_from_edges(cand.vertices, cand.edges)
        if next(
            iter(subgraph_monomorphisms(c_adj, g_adj, induced=True)), None
        ) is not None:
            return label
    return "irregular"
