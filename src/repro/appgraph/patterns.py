"""Constructors for the application patterns used by NCCL-style workloads.

Paper Fig. 8 shows the three shapes a 5-GPU NCCL job can take: a ring (used
for large messages), a tree (small messages / broadcast) or the union of
both.  We also provide chains, stars and all-to-all for MPI-style
workloads, plus a ``by_name`` registry used by job files.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, List, Tuple

from .application import ApplicationGraph

Edge = Tuple[int, int]


def single(num_gpus: int = 1) -> ApplicationGraph:
    """A job with no inter-GPU communication (one or more isolated slots).

    Used for 1-GPU jobs and for embarrassingly parallel multi-GPU codes
    (Cusimann / GMM in the paper have negligible inter-GPU traffic)."""
    return ApplicationGraph("single", num_gpus, [])


def ring(num_gpus: int) -> ApplicationGraph:
    """NCCL ring: slot *i* talks to slot *(i+1) mod k*.

    For ``num_gpus == 2`` the ring degenerates to the single pair edge; for
    1 GPU there is nothing to connect."""
    if num_gpus < 1:
        raise ValueError("ring needs at least one GPU")
    if num_gpus == 1:
        return ApplicationGraph("ring", 1, [])
    if num_gpus == 2:
        return ApplicationGraph("ring", 2, [(0, 1)])
    edges = [(i, (i + 1) % num_gpus) for i in range(num_gpus)]
    return ApplicationGraph("ring", num_gpus, edges)


def chain(num_gpus: int) -> ApplicationGraph:
    """Open chain (pipeline parallelism): slot *i* talks to slot *i+1*."""
    if num_gpus < 1:
        raise ValueError("chain needs at least one GPU")
    return ApplicationGraph("chain", num_gpus, [(i, i + 1) for i in range(num_gpus - 1)])


def tree(num_gpus: int) -> ApplicationGraph:
    """NCCL binary reduction tree rooted at slot 0 (paper Fig. 8, middle).

    Slot *i* has children *2i+1* and *2i+2* when they exist."""
    if num_gpus < 1:
        raise ValueError("tree needs at least one GPU")
    edges: List[Edge] = []
    for i in range(num_gpus):
        for child in (2 * i + 1, 2 * i + 2):
            if child < num_gpus:
                edges.append((i, child))
    return ApplicationGraph("tree", num_gpus, edges)


def star(num_gpus: int) -> ApplicationGraph:
    """Parameter-server shape: slot 0 talks to every other slot."""
    if num_gpus < 1:
        raise ValueError("star needs at least one GPU")
    return ApplicationGraph("star", num_gpus, [(0, i) for i in range(1, num_gpus)])


def all_to_all(num_gpus: int) -> ApplicationGraph:
    """Fully connected pattern (alltoall collectives, conservative default
    when the communication pattern cannot be extracted — section 3.1)."""
    if num_gpus < 1:
        raise ValueError("all_to_all needs at least one GPU")
    edges = [
        (u, v) for u in range(num_gpus) for v in range(u + 1, num_gpus)
    ]
    return ApplicationGraph("alltoall", num_gpus, edges)


def ring_tree(num_gpus: int) -> ApplicationGraph:
    """Union of the NCCL ring and tree over the same slots (Fig. 8, right):
    what a job using both large- and small-message collectives exhibits."""
    g = ring(num_gpus).union(tree(num_gpus), name="ring+tree")
    return g


def from_edges(name: str, num_gpus: int, edges: List[Edge]) -> ApplicationGraph:
    """Custom pattern, e.g. extracted from profiling traces."""
    return ApplicationGraph(name, num_gpus, edges)


#: Pattern registry used by job files (column "Topology" in Fig. 14).
PATTERN_BUILDERS: Dict[str, Callable[[int], ApplicationGraph]] = {
    "single": single,
    "ring": ring,
    "chain": chain,
    "tree": tree,
    "star": star,
    "alltoall": all_to_all,
    "ring+tree": ring_tree,
}


@lru_cache(maxsize=1024)
def _build_by_name(key: str, num_gpus: int) -> ApplicationGraph:
    """Memoized builder dispatch over the *normalized* pattern name."""
    try:
        builder = PATTERN_BUILDERS[key]
    except KeyError:
        known = ", ".join(sorted(PATTERN_BUILDERS))
        raise KeyError(f"unknown pattern {key!r}; known: {known}") from None
    return builder(num_gpus)


def by_name(name: str, num_gpus: int) -> ApplicationGraph:
    """Instantiate a registered pattern by name for ``num_gpus`` slots.

    Memoized: application graphs are immutable, and the simulators
    resolve every job's pattern on each placement attempt — replays
    request the same few (name, size) pairs tens of thousands of times,
    so sharing one instance keeps pattern construction off the hot path
    (and makes downstream per-pattern caches hit the same object).
    The name is case-normalized *before* the memo key is formed, so
    ``"Ring"`` and ``"ring"`` share one entry; lookups of unknown names
    raise without poisoning the memo.
    """
    return _build_by_name(name.lower(), num_gpus)
